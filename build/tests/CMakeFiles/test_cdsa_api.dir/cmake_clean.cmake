file(REMOVE_RECURSE
  "CMakeFiles/test_cdsa_api.dir/test_cdsa_api.cc.o"
  "CMakeFiles/test_cdsa_api.dir/test_cdsa_api.cc.o.d"
  "test_cdsa_api"
  "test_cdsa_api.pdb"
  "test_cdsa_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdsa_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
