# Empty dependencies file for test_completion_queue.
# This may be replaced when dependencies are built.
