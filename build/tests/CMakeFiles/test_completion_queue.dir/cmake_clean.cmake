file(REMOVE_RECURSE
  "CMakeFiles/test_completion_queue.dir/test_completion_queue.cc.o"
  "CMakeFiles/test_completion_queue.dir/test_completion_queue.cc.o.d"
  "test_completion_queue"
  "test_completion_queue.pdb"
  "test_completion_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_completion_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
