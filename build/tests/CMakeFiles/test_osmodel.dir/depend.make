# Empty dependencies file for test_osmodel.
# This may be replaced when dependencies are built.
