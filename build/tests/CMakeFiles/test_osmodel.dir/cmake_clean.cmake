file(REMOVE_RECURSE
  "CMakeFiles/test_osmodel.dir/test_osmodel.cc.o"
  "CMakeFiles/test_osmodel.dir/test_osmodel.cc.o.d"
  "test_osmodel"
  "test_osmodel.pdb"
  "test_osmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
