file(REMOVE_RECURSE
  "CMakeFiles/test_memory_registry.dir/test_memory_registry.cc.o"
  "CMakeFiles/test_memory_registry.dir/test_memory_registry.cc.o.d"
  "test_memory_registry"
  "test_memory_registry.pdb"
  "test_memory_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
