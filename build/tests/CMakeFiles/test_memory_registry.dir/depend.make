# Empty dependencies file for test_memory_registry.
# This may be replaced when dependencies are built.
