# Empty compiler generated dependencies file for test_v3_server.
# This may be replaced when dependencies are built.
