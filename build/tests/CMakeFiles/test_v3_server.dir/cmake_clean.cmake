file(REMOVE_RECURSE
  "CMakeFiles/test_v3_server.dir/test_v3_server.cc.o"
  "CMakeFiles/test_v3_server.dir/test_v3_server.cc.o.d"
  "test_v3_server"
  "test_v3_server.pdb"
  "test_v3_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v3_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
