file(REMOVE_RECURSE
  "CMakeFiles/test_mq_cache.dir/test_mq_cache.cc.o"
  "CMakeFiles/test_mq_cache.dir/test_mq_cache.cc.o.d"
  "test_mq_cache"
  "test_mq_cache.pdb"
  "test_mq_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mq_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
