# Empty compiler generated dependencies file for test_mq_cache.
# This may be replaced when dependencies are built.
