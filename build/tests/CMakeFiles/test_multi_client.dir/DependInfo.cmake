
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_multi_client.cc" "tests/CMakeFiles/test_multi_client.dir/test_multi_client.cc.o" "gcc" "tests/CMakeFiles/test_multi_client.dir/test_multi_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsa/CMakeFiles/v3sim_dsa.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/v3sim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/v3sim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/osmodel/CMakeFiles/v3sim_osmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/vi/CMakeFiles/v3sim_vi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/v3sim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/v3sim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/v3sim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
