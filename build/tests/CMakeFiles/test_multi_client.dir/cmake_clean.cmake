file(REMOVE_RECURSE
  "CMakeFiles/test_multi_client.dir/test_multi_client.cc.o"
  "CMakeFiles/test_multi_client.dir/test_multi_client.cc.o.d"
  "test_multi_client"
  "test_multi_client.pdb"
  "test_multi_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
