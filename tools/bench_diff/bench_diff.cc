/**
 * @file
 * bench_diff: compares two BENCH_*.json artifacts row by row and
 * reports the per-row delta of a chosen metric (default:
 * events_per_sec, the selftime headline number).
 *
 * Usage:
 *   bench_diff BEFORE.json AFTER.json
 *       [--key profile] [--metric events_per_sec] [--min-ratio R]
 *
 * Rows are matched on the `--key` column. Exit status is 0 on a
 * clean comparison; 1 on I/O or schema errors, or — when
 * `--min-ratio` is given — when any matched row's after/before ratio
 * falls below R. CI and reviews use this to turn "the simulator got
 * slower" from folklore into a failing check.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hh"

namespace
{

using v3sim::util::JsonValue;

std::optional<JsonValue>
loadArtifact(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot read %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = JsonValue::parse(buffer.str());
    if (!parsed || !parsed->isObject()) {
        std::fprintf(stderr,
                     "bench_diff: %s is not a JSON object\n",
                     path.c_str());
        return std::nullopt;
    }
    return parsed;
}

const std::vector<JsonValue> *
rowsOf(const JsonValue &doc, const std::string &path)
{
    const JsonValue *rows = doc.find("rows");
    if (rows == nullptr || !rows->isArray()) {
        std::fprintf(stderr, "bench_diff: %s has no rows array\n",
                     path.c_str());
        return nullptr;
    }
    return &rows->array;
}

std::string
rowKey(const JsonValue &row, const std::string &key)
{
    const JsonValue *v = row.find(key);
    if (v == nullptr)
        return "";
    if (v->isString())
        return v->string;
    if (v->isNumber()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", v->number);
        return buf;
    }
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string key = "profile";
    std::string metric = "events_per_sec";
    double min_ratio = 0.0;
    bool have_min_ratio = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "bench_diff: %s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--key") {
            key = next();
        } else if (arg == "--metric") {
            metric = next();
        } else if (arg == "--min-ratio") {
            min_ratio = std::atof(next());
            have_min_ratio = true;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        std::fprintf(
            stderr,
            "usage: bench_diff BEFORE.json AFTER.json "
            "[--key profile] [--metric events_per_sec] "
            "[--min-ratio R]\n");
        return 1;
    }

    auto before = loadArtifact(files[0]);
    auto after = loadArtifact(files[1]);
    if (!before || !after)
        return 1;
    const auto *before_rows = rowsOf(*before, files[0]);
    const auto *after_rows = rowsOf(*after, files[1]);
    if (before_rows == nullptr || after_rows == nullptr)
        return 1;

    std::printf("%-16s %16s %16s %8s\n", key.c_str(),
                ("before " + metric).c_str(),
                ("after " + metric).c_str(), "ratio");
    bool regression = false;
    bool matched_any = false;
    for (const JsonValue &b : *before_rows) {
        const std::string name = rowKey(b, key);
        if (name.empty())
            continue;
        const JsonValue *a_row = nullptr;
        for (const JsonValue &a : *after_rows) {
            if (rowKey(a, key) == name) {
                a_row = &a;
                break;
            }
        }
        if (a_row == nullptr) {
            std::printf("%-16s %16s\n", name.c_str(),
                        "(missing after)");
            continue;
        }
        const JsonValue *bv = b.find(metric);
        const JsonValue *av = a_row->find(metric);
        if (bv == nullptr || !bv->isNumber() || av == nullptr ||
            !av->isNumber()) {
            std::printf("%-16s %16s\n", name.c_str(),
                        "(metric missing)");
            continue;
        }
        matched_any = true;
        const double ratio =
            bv->number != 0 ? av->number / bv->number : 0.0;
        std::printf("%-16s %16.3f %16.3f %7.3fx\n", name.c_str(),
                    bv->number, av->number, ratio);
        if (have_min_ratio && ratio < min_ratio)
            regression = true;
    }
    if (!matched_any) {
        std::fprintf(stderr,
                     "bench_diff: no comparable rows "
                     "(key=%s metric=%s)\n",
                     key.c_str(), metric.c_str());
        return 1;
    }
    if (regression) {
        std::fprintf(stderr,
                     "bench_diff: ratio below --min-ratio %.3f\n",
                     min_ratio);
        return 1;
    }
    return 0;
}
