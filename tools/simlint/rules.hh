/**
 * @file
 * simlint analysis passes: the per-TU rule set and the exported
 * facts the cross-TU pass (lint.cc) consumes.
 *
 * analyzeTu() is pass 1: strip, tokenize, build the TU-local symbol
 * table, scan includes and metric registrations/lookups. It emits no
 * findings. runTuRules() is pass 2: with the repo-wide alias table
 * and companion-header declarations in hand, it runs every per-TU
 * rule and appends findings to the analysis. The cross-TU rules
 * (metric-index, include-graph attribution) live in lint.cc on top
 * of the exported facts.
 */

#ifndef V3SIM_TOOLS_SIMLINT_RULES_HH
#define V3SIM_TOOLS_SIMLINT_RULES_HH

#include <string>
#include <vector>

#include "lexer.hh"
#include "lint.hh"
#include "symtab.hh"

namespace v3sim::simlint
{

/** One metric-path fact exported for the cross-TU metric index. */
struct MetricUse
{
    enum class Kind
    {
        RegisterPath,   ///< full dotted path registered verbatim
        RegisterPrefix, ///< literal fragment ending in '.' (or a
                        ///< uniquePrefix() base)
        RegisterSuffix, ///< literal fragment starting with '.'
        RegisterInfix,  ///< literal fragment with computed ends
        Lookup,         ///< by-name lookup of a full dotted path
    };
    Kind kind = Kind::RegisterPath;
    std::string text;  ///< the literal
    int line = 0;
    std::string call;  ///< e.g. "counter", "findCounter"
};

/** Everything pass 1 learns about one translation unit. */
struct TuAnalysis
{
    std::string path;
    Stripped stripped;
    std::vector<Token> tokens;
    SymbolTable symbols;  ///< TU-local (no global aliases yet)
    std::vector<IncludeDirective> includes;
    std::vector<MetricUse> metric_uses;
    std::vector<Finding> findings; ///< filled by runTuRules()
};

/** Pass 1: lexes and indexes one TU. Emits no findings. */
TuAnalysis analyzeTu(const std::string &path,
                     const std::string &content);

/**
 * Pass 2: runs every per-TU rule, appending to @p tu.findings.
 * @p global_aliases extends alias resolution repo-wide (may be
 * null); @p extra_tracked injects container declarations from the
 * companion header (may be null). The effective symbol table is
 * rebuilt with the globals so alias-typed members resolve across
 * TUs.
 */
void runTuRules(TuAnalysis &tu,
                const std::map<std::string, ContainerKind>
                    *global_aliases,
                const std::vector<TrackedVar> *extra_tracked);

} // namespace v3sim::simlint

#endif // V3SIM_TOOLS_SIMLINT_RULES_HH
