/**
 * @file
 * simlint driver: per-file entry points, the cross-TU repo pass,
 * output formatting (text/JSON) and the suppression ratchet.
 */

#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <tuple>

#include "lexer.hh"
#include "rules.hh"
#include "symtab.hh"

namespace fs = std::filesystem;

namespace v3sim::simlint
{

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

auto
findingKey(const Finding &f)
{
    return std::tie(f.file, f.line, f.rule, f.message);
}

void
sortFindings(std::vector<Finding> &v)
{
    std::sort(v.begin(), v.end(),
              [](const Finding &a, const Finding &b) {
                  return findingKey(a) < findingKey(b);
              });
    v.erase(std::unique(v.begin(), v.end(),
                        [](const Finding &a, const Finding &b) {
                            return findingKey(a) == findingKey(b);
                        }),
            v.end());
}

/** Candidate companion-header paths for a .cc/.cpp file. */
std::vector<std::string>
companionHeaders(const std::string &path)
{
    std::vector<std::string> out;
    for (const char *src_ext : {".cc", ".cpp"}) {
        std::string ext = src_ext;
        if (path.size() > ext.size() &&
            path.compare(path.size() - ext.size(), ext.size(),
                         ext) == 0) {
            std::string stem =
                path.substr(0, path.size() - ext.size());
            for (const char *h : {".hh", ".h", ".hpp"})
                out.push_back(stem + h);
            break;
        }
    }
    return out;
}

/** True when scanned path @p path can satisfy include target
 *  @p target ("sim/metrics.hh" matches "src/sim/metrics.hh"). */
bool
includeResolvesTo(const std::string &target, const std::string &path)
{
    if (path == target)
        return true;
    return path.size() > target.size() + 1 &&
           path.compare(path.size() - target.size(), target.size(),
                        target) == 0 &&
           path[path.size() - target.size() - 1] == '/';
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** True when a Lookup path is satisfied by some registration. */
bool
lookupResolves(
    const std::string &path,
    const std::vector<std::pair<MetricUse, std::string>> &regs)
{
    for (const auto &[use, file] : regs) {
        switch (use.kind) {
        case MetricUse::Kind::RegisterPath:
            if (use.text == path)
                return true;
            break;
        case MetricUse::Kind::RegisterPrefix:
            if (startsWith(path, use.text))
                return true;
            break;
        case MetricUse::Kind::RegisterSuffix:
            if (endsWith(path, use.text))
                return true;
            break;
        case MetricUse::Kind::RegisterInfix:
            if (path.find(use.text) != std::string::npos)
                return true;
            break;
        case MetricUse::Kind::Lookup:
            break;
        }
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::map<std::string, long>
suppressionCounts(const RepoReport &report)
{
    std::map<std::string, long> counts;
    for (const Suppression &s : report.suppressions)
        ++counts[s.rule];
    return counts;
}

} // namespace

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    TuAnalysis tu = analyzeTu(path, content);
    runTuRules(tu, nullptr, nullptr);
    sortFindings(tu.findings);
    return tu.findings;
}

std::vector<Finding>
lintFile(const std::string &path)
{
    std::string content;
    if (!readFile(path, content))
        return {{path, 0, "io", "cannot read file"}};

    TuAnalysis tu = analyzeTu(path, content);

    // Companion header: its aliases extend alias resolution, its
    // container members count as tracked in this TU.
    std::map<std::string, ContainerKind> header_aliases;
    std::vector<TrackedVar> header_tracked;
    bool have_header = false;
    for (const std::string &hpath : companionHeaders(path)) {
        std::string htext;
        if (!readFile(hpath, htext))
            continue;
        Stripped hs = strip(hpath, htext);
        SymbolTable hsym = buildSymbols(tokenize(hs));
        header_aliases = std::move(hsym.aliases);
        header_tracked = std::move(hsym.tracked);
        have_header = true;
        break;
    }

    runTuRules(tu, have_header ? &header_aliases : nullptr,
               have_header ? &header_tracked : nullptr);
    sortFindings(tu.findings);
    return tu.findings;
}

RepoReport
lintRepo(const std::vector<std::string> &paths)
{
    RepoReport report;
    report.files = paths.size();

    // ---- Pass 1: analyze every TU, build the repo-wide context ---
    std::vector<TuAnalysis> tus;
    tus.reserve(paths.size());
    std::map<std::string, size_t> by_path;
    for (const std::string &path : paths) {
        std::string content;
        if (!readFile(path, content)) {
            report.findings.push_back(
                {path, 0, "io", "cannot read file"});
            continue;
        }
        by_path.emplace(path, tus.size());
        tus.push_back(analyzeTu(path, content));
    }

    std::map<std::string, ContainerKind> global_aliases;
    for (const TuAnalysis &tu : tus)
        for (const auto &[name, kind] : tu.symbols.aliases)
            global_aliases.emplace(name, kind);

    // ---- Pass 2: per-TU rules with repo-wide context -------------
    // Companion-header members are rebuilt with the global aliases so
    // a member declared via an alias from a third TU is still
    // tracked.
    std::map<size_t, std::vector<TrackedVar>> header_tracked;
    auto trackedOf =
        [&](size_t idx) -> const std::vector<TrackedVar> & {
        auto it = header_tracked.find(idx);
        if (it == header_tracked.end()) {
            it = header_tracked
                     .emplace(idx,
                              buildSymbols(tus[idx].tokens,
                                           &global_aliases)
                                  .tracked)
                     .first;
        }
        return it->second;
    };

    for (size_t i = 0; i < tus.size(); ++i) {
        const std::vector<TrackedVar> *extra = nullptr;
        for (const std::string &hpath :
             companionHeaders(tus[i].path)) {
            auto hit = by_path.find(hpath);
            if (hit != by_path.end()) {
                extra = &trackedOf(hit->second);
                break;
            }
        }
        runTuRules(tus[i], &global_aliases, extra);
    }

    // ---- Cross-TU: include graph (banned-header attribution) -----
    std::vector<std::vector<size_t>> includers(tus.size());
    for (size_t i = 0; i < tus.size(); ++i) {
        for (const IncludeDirective &inc : tus[i].includes) {
            if (inc.system)
                continue;
            for (size_t j = 0; j < tus.size(); ++j) {
                if (j != i &&
                    includeResolvesTo(inc.target, tus[j].path))
                    includers[j].push_back(i);
            }
        }
    }
    auto transitiveIncluders = [&](size_t idx) {
        std::set<size_t> seen{idx};
        std::queue<size_t> q;
        q.push(idx);
        while (!q.empty()) {
            size_t cur = q.front();
            q.pop();
            for (size_t up : includers[cur]) {
                if (seen.insert(up).second)
                    q.push(up);
            }
        }
        return seen.size() - 1;
    };
    for (size_t i = 0; i < tus.size(); ++i) {
        size_t pulled = 0;
        bool computed = false;
        for (Finding &f : tus[i].findings) {
            if (f.rule != "banned-header")
                continue;
            if (!computed) {
                pulled = transitiveIncluders(i);
                computed = true;
            }
            if (pulled > 0) {
                f.message += "; pulled in transitively by " +
                             std::to_string(pulled) +
                             " scanned file(s)";
            }
        }
    }

    // ---- Cross-TU: metric index ----------------------------------
    std::vector<std::pair<MetricUse, std::string>> regs;
    for (const TuAnalysis &tu : tus) {
        for (const MetricUse &use : tu.metric_uses) {
            if (use.kind != MetricUse::Kind::Lookup)
                regs.emplace_back(use, tu.path);
        }
    }

    // Duplicate full-path registrations. Tests are excluded: they
    // legitimately re-register the same path on per-test local
    // registries.
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        full_paths;
    for (const auto &[use, file] : regs) {
        if (use.kind == MetricUse::Kind::RegisterPath &&
            !pathContains(file, "tests/"))
            full_paths[use.text].emplace_back(file, use.line);
    }
    for (auto &[path, sites] : full_paths) {
        if (sites.size() < 2)
            continue;
        std::sort(sites.begin(), sites.end());
        for (size_t s = 1; s < sites.size(); ++s) {
            const auto &[file, line] = sites[s];
            size_t idx = by_path.at(file);
            if (tus[idx].stripped.allowed("metric-index", line))
                continue;
            tus[idx].findings.push_back(
                {file, line, "metric-index",
                 "metric path \"" + path +
                     "\" already registered at " + sites[0].first +
                     ":" + std::to_string(sites[0].second) +
                     ": duplicate registrations silently share one "
                     "series; derive a distinct path or annotate "
                     "simlint:allow(metric-index: <reason>)"});
        }
    }

    // By-name lookups of metrics never registered anywhere in the
    // scanned tree: a typo reads as a silent zero.
    for (TuAnalysis &tu : tus) {
        for (const MetricUse &use : tu.metric_uses) {
            if (use.kind != MetricUse::Kind::Lookup)
                continue;
            if (lookupResolves(use.text, regs))
                continue;
            if (tu.stripped.allowed("metric-index", use.line))
                continue;
            tu.findings.push_back(
                {tu.path, use.line, "metric-index",
                 "`" + use.call + "(\"" + use.text +
                     "\")` looks up a metric never registered "
                     "anywhere in the scanned tree: a typo here "
                     "reads as a silent zero; fix the path or "
                     "annotate simlint:allow(metric-index: "
                     "<reason>)"});
        }
    }

    // ---- Collect -------------------------------------------------
    for (TuAnalysis &tu : tus) {
        report.findings.insert(report.findings.end(),
                               tu.findings.begin(),
                               tu.findings.end());
        report.suppressions.insert(
            report.suppressions.end(),
            tu.stripped.suppressions.begin(),
            tu.stripped.suppressions.end());
    }
    sortFindings(report.findings);
    std::sort(report.suppressions.begin(),
              report.suppressions.end(),
              [](const Suppression &a, const Suppression &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return report;
}

std::vector<std::string>
collectInputs(const std::vector<std::string> &roots,
              std::vector<std::string> *missing)
{
    static const std::set<std::string> kExts = {
        ".cc", ".cpp", ".hh", ".hpp", ".h",
    };
    static const std::set<std::string> kSkipDirs = {
        "fixtures", "build", ".git",
    };
    std::vector<std::string> out;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_regular_file(root, ec)) {
            out.push_back(root);
            continue;
        }
        if (!fs::is_directory(root, ec)) {
            if (missing)
                missing->push_back(root);
            continue;
        }
        fs::recursive_directory_iterator it(
            root, fs::directory_options::skip_permission_denied,
            ec);
        fs::recursive_directory_iterator end;
        for (; !ec && it != end; it.increment(ec)) {
            const fs::directory_entry &entry = *it;
            if (entry.is_directory(ec)) {
                if (kSkipDirs.count(
                        entry.path().filename().string()))
                    it.disable_recursion_pending();
                continue;
            }
            if (!entry.is_regular_file(ec))
                continue;
            if (kExts.count(entry.path().extension().string()))
                out.push_back(entry.path().generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) +
           ": [" + finding.rule + "] " + finding.message;
}

std::string
reportToJson(const RepoReport &report)
{
    std::ostringstream out;
    out << "{\n  \"schema\": 1,\n  \"files\": " << report.files
        << ",\n  \"findings\": [";
    for (size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        out << (i ? ",\n    " : "\n    ") << "{\"file\": \""
            << jsonEscape(f.file) << "\", \"line\": " << f.line
            << ", \"rule\": \"" << jsonEscape(f.rule)
            << "\", \"message\": \"" << jsonEscape(f.message)
            << "\"}";
    }
    out << (report.findings.empty() ? "]" : "\n  ]")
        << ",\n  \"suppressions\": [";
    for (size_t i = 0; i < report.suppressions.size(); ++i) {
        const Suppression &s = report.suppressions[i];
        out << (i ? ",\n    " : "\n    ") << "{\"file\": \""
            << jsonEscape(s.file) << "\", \"line\": " << s.line
            << ", \"rule\": \"" << jsonEscape(s.rule)
            << "\", \"reason\": \"" << jsonEscape(s.reason)
            << "\", \"file_scope\": "
            << (s.file_scope ? "true" : "false") << "}";
    }
    out << (report.suppressions.empty() ? "]" : "\n  ]")
        << ",\n  \"suppression_counts\": {";
    const auto counts = suppressionCounts(report);
    size_t i = 0;
    for (const auto &[rule, n] : counts) {
        out << (i++ ? ", " : "") << "\"" << jsonEscape(rule)
            << "\": " << n;
    }
    out << "},\n  \"total_suppressions\": "
        << report.suppressions.size() << "\n}\n";
    return out.str();
}

std::string
suppressionSummary(const RepoReport &report)
{
    std::ostringstream out;
    out << "total " << report.suppressions.size() << "\n";
    for (const auto &[rule, n] : suppressionCounts(report))
        out << rule << " " << n << "\n";
    return out.str();
}

RatchetResult
checkRatchet(const RepoReport &report,
             const std::string &baseline_text)
{
    RatchetResult res;
    std::map<std::string, long> base;
    bool base_has_total = false;
    long base_total = 0;
    {
        std::istringstream in(baseline_text);
        std::string line;
        int line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream ls(line);
            std::string rule;
            long n = -1;
            if (!(ls >> rule))
                continue; // blank / comment-only line
            if (!(ls >> n) || n < 0) {
                res.ok = false;
                res.detail = "malformed baseline line " +
                             std::to_string(line_no) + ": \"" +
                             line + "\" (want \"<rule> <count>\")";
                return res;
            }
            if (rule == "total") {
                base_has_total = true;
                base_total = n;
            } else {
                base[rule] = n;
            }
        }
    }

    const auto live = suppressionCounts(report);
    const long live_total =
        static_cast<long>(report.suppressions.size());

    std::vector<std::string> breaches;
    std::vector<std::string> notes;
    std::set<std::string> rules;
    for (const auto &[rule, n] : live)
        rules.insert(rule);
    for (const auto &[rule, n] : base)
        rules.insert(rule);
    for (const std::string &rule : rules) {
        auto lit = live.find(rule);
        auto bit = base.find(rule);
        long l = lit == live.end() ? 0 : lit->second;
        long b = bit == base.end() ? 0 : bit->second;
        if (l > b) {
            breaches.push_back(
                rule + ": " + std::to_string(l) +
                " live suppression(s) > baseline " +
                std::to_string(b) +
                " — remove the new allow or bump the baseline "
                "deliberately (with review)");
        } else if (l < b) {
            notes.push_back(rule + ": " + std::to_string(l) +
                            " live < baseline " +
                            std::to_string(b) +
                            " (baseline can be tightened)");
        }
    }
    if (base_has_total && live_total > base_total) {
        breaches.push_back("total: " + std::to_string(live_total) +
                           " live suppression(s) > baseline " +
                           std::to_string(base_total));
    } else if (base_has_total && live_total < base_total) {
        notes.push_back("total: " + std::to_string(live_total) +
                        " live < baseline " +
                        std::to_string(base_total) +
                        " (baseline can be tightened)");
    }

    std::ostringstream detail;
    if (breaches.empty()) {
        detail << "suppression ratchet OK (" << live_total
               << " live suppression(s))";
        res.ok = true;
    } else {
        detail << "suppression ratchet BREACHED:";
        for (const std::string &b : breaches)
            detail << "\n  " << b;
        res.ok = false;
    }
    for (const std::string &n : notes)
        detail << "\n  note: " << n;
    res.detail = detail.str();
    return res;
}

} // namespace v3sim::simlint
