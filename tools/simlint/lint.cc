#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace v3sim::simlint
{

namespace
{

/** A string literal found in the source (content only, no quotes). */
struct Literal
{
    int line = 0;
    std::string text;
};

/**
 * Comment/literal-stripped view of a translation unit. Lines keep
 * their length (stripped spans are blanked with spaces) so column
 * arithmetic and line numbers survive. Annotations are parsed from
 * the comment text before it is discarded.
 */
struct Stripped
{
    std::vector<std::string> code;      ///< blanked source lines
    std::vector<Literal> literals;      ///< string literals, in order
    /** line (1-based) -> rules allowed on that line and the next. */
    std::map<int, std::set<std::string>> allows;
    std::set<std::string> file_allows;  ///< allow-file rules
    std::vector<Finding> annotation_findings;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parses allow/allow-file annotations out of one comment chunk.
 *  (The tag itself is spelled via kTag only: writing it literally in
 *  a comment here would trip the parser on its own source.) */
void
parseAnnotations(const std::string &path, const std::string &comment,
                 int line, Stripped &out)
{
    static const std::string kTag = "simlint:allow";
    size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string::npos) {
        size_t cursor = at + kTag.size();
        bool file_scope = false;
        if (comment.compare(cursor, 5, "-file") == 0) {
            file_scope = true;
            cursor += 5;
        }
        auto bad = [&](const std::string &why) {
            out.annotation_findings.push_back(
                {path, line, "annotation", why});
        };
        if (cursor >= comment.size() || comment[cursor] != '(') {
            bad("malformed simlint:allow annotation (expected '(')");
            break;
        }
        size_t close = comment.find(')', cursor);
        if (close == std::string::npos) {
            bad("malformed simlint:allow annotation (missing ')')");
            break;
        }
        std::string body =
            comment.substr(cursor + 1, close - cursor - 1);
        size_t colon = body.find(':');
        if (colon == std::string::npos) {
            bad("simlint:allow needs \"rule: reason\"");
        } else {
            std::string rule = trim(body.substr(0, colon));
            std::string reason = trim(body.substr(colon + 1));
            if (rule.empty() || reason.empty()) {
                bad("simlint:allow needs a rule and a non-empty "
                    "reason");
            } else if (file_scope) {
                out.file_allows.insert(rule);
            } else {
                out.allows[line].insert(rule);
            }
        }
        at = close;
    }
}

/** One pass over the raw text: blanks comments and literals, records
 *  string literals and annotations. */
Stripped
strip(const std::string &path, const std::string &content)
{
    Stripped out;
    std::vector<std::string> lines;
    {
        std::string line;
        std::istringstream in(content);
        while (std::getline(in, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            lines.push_back(line);
        }
    }

    enum class State
    {
        Normal,
        BlockComment,
        String,
        RawString,
        Char,
    };
    State state = State::Normal;
    std::string raw_delim;      // for RawString: the ")delim" closer
    std::string literal;        // accumulating string literal text
    int literal_line = 0;

    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string &src = lines[li];
        std::string code(src.size(), ' ');
        const int line_no = static_cast<int>(li) + 1;
        char prev_code = '\0';  // last non-blanked char emitted

        for (size_t i = 0; i < src.size(); ++i) {
            char c = src[i];
            char next = i + 1 < src.size() ? src[i + 1] : '\0';
            switch (state) {
            case State::Normal:
                if (c == '/' && next == '/') {
                    parseAnnotations(path, src.substr(i), line_no,
                                     out);
                    i = src.size();
                } else if (c == '/' && next == '*') {
                    // Block comment: collect its text (to end of
                    // line at least) for annotations.
                    size_t close = src.find("*/", i + 2);
                    parseAnnotations(
                        path,
                        src.substr(i, close == std::string::npos
                                          ? std::string::npos
                                          : close - i),
                        line_no, out);
                    if (close != std::string::npos) {
                        i = close + 1;
                    } else {
                        state = State::BlockComment;
                        i = src.size();
                    }
                } else if (c == '"') {
                    if (prev_code == 'R') {
                        size_t open = src.find('(', i + 1);
                        if (open == std::string::npos)
                            open = src.size();
                        raw_delim =
                            ")" + src.substr(i + 1, open - i - 1) +
                            "\"";
                        state = State::RawString;
                        literal.clear();
                        literal_line = line_no;
                        i = open;
                    } else {
                        state = State::String;
                        literal.clear();
                        literal_line = line_no;
                    }
                } else if (c == '\'' && !isIdentChar(prev_code)) {
                    // Skip digit separators (1'000) via the prev
                    // check; otherwise a real char literal.
                    state = State::Char;
                } else {
                    code[i] = c;
                    if (c != ' ' && c != '\t')
                        prev_code = c;
                }
                break;
            case State::BlockComment: {
                size_t close = src.find("*/", i);
                parseAnnotations(
                    path,
                    src.substr(i, close == std::string::npos
                                      ? std::string::npos
                                      : close - i),
                    line_no, out);
                if (close != std::string::npos) {
                    i = close + 1;
                    state = State::Normal;
                } else {
                    i = src.size();
                }
                break;
            }
            case State::String:
                if (c == '\\') {
                    if (i + 1 < src.size())
                        literal.push_back(next);
                    ++i;
                } else if (c == '"') {
                    out.literals.push_back({literal_line, literal});
                    state = State::Normal;
                    prev_code = '"';
                } else {
                    literal.push_back(c);
                }
                break;
            case State::RawString: {
                size_t close = src.find(raw_delim, i);
                if (close != std::string::npos) {
                    literal.append(src, i, close - i);
                    out.literals.push_back({literal_line, literal});
                    i = close + raw_delim.size() - 1;
                    state = State::Normal;
                    prev_code = '"';
                } else {
                    literal.append(src, i, std::string::npos);
                    literal.push_back('\n');
                    i = src.size();
                }
                break;
            }
            case State::Char:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    state = State::Normal;
                    prev_code = '\'';
                }
                break;
            }
        }
        // Unterminated ordinary string at end of line: treat as
        // closed (lint input may be mid-edit; stay line-stable).
        if (state == State::String) {
            out.literals.push_back({literal_line, literal});
            state = State::Normal;
        }
        if (state == State::Char)
            state = State::Normal;
        out.code.push_back(std::move(code));
    }
    return out;
}

bool
allowed(const Stripped &s, const std::string &rule, int line)
{
    if (s.file_allows.count(rule))
        return true;
    for (int l : {line, line - 1}) {
        auto it = s.allows.find(l);
        if (it != s.allows.end() && it->second.count(rule))
            return true;
    }
    return false;
}

/** Finds the next identifier at or after @p pos; returns "" at end
 *  of line. Advances @p pos past the identifier. */
std::string
nextIdent(const std::string &text, size_t &pos)
{
    while (pos < text.size() && !isIdentChar(text[pos]))
        ++pos;
    size_t start = pos;
    while (pos < text.size() && isIdentChar(text[pos]))
        ++pos;
    return text.substr(start, pos - start);
}

/** True if @p text contains the whole word @p word (identifier
 *  boundaries on both sides). Sets @p at to the match offset. */
bool
containsWord(const std::string &text, const std::string &word,
             size_t &at, size_t from = 0)
{
    size_t pos = from;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !isIdentChar(text[pos - 1]);
        size_t end = pos + word.size();
        bool right_ok =
            end >= text.size() || !isIdentChar(text[end]);
        if (left_ok && right_ok) {
            at = pos;
            return true;
        }
        pos = end;
    }
    return false;
}

bool
containsWord(const std::string &text, const std::string &word)
{
    size_t at = 0;
    return containsWord(text, word, at);
}

/** True when word is followed (after whitespace) by '('. */
bool
callsFunction(const std::string &text, const std::string &word,
              size_t from = 0)
{
    size_t at = 0;
    size_t pos = from;
    while (containsWord(text, word, at, pos)) {
        size_t after = at + word.size();
        while (after < text.size() &&
               (text[after] == ' ' || text[after] == '\t'))
            ++after;
        if (after < text.size() && text[after] == '(')
            return true;
        pos = at + word.size();
    }
    return false;
}

// ---------------------------------------------------------------
// Container-declaration scanning
// ---------------------------------------------------------------

/**
 * Names declared with a problematic container type, with the line of
 * the declaration that introduced them. `kind` distinguishes the
 * rule the iteration will be reported under.
 */
struct TrackedName
{
    std::string name;
    int line = 0;
    bool pointer_keyed = false; ///< ptr-map-iter instead of
                                ///< unordered-iter
};

/** First template argument of the text starting just after '<'. */
std::string
firstTemplateArg(const std::string &text, size_t open)
{
    int depth = 1;
    size_t i = open;
    size_t start = open;
    for (; i < text.size() && depth > 0; ++i) {
        char c = text[i];
        if (c == '<')
            ++depth;
        else if (c == '>')
            --depth;
        else if (c == ',' && depth == 1)
            return text.substr(start, i - start);
    }
    if (depth == 0 && i > start)
        return text.substr(start, i - 1 - start);
    return "";
}

/**
 * Scans the stripped code for declarations whose type is an
 * unordered container (or a pointer-keyed ordered map/set) and
 * returns the declared variable names. Also resolves one level of
 * `using Alias = std::unordered_map<...>;`.
 */
std::vector<TrackedName>
collectTrackedNames(const Stripped &stripped)
{
    std::vector<TrackedName> tracked;
    std::set<std::string> unordered_aliases;
    std::set<std::string> ptr_aliases;

    // Joined text with line-number mapping for multi-line decls.
    std::string joined;
    std::vector<int> line_of; // joined offset -> 1-based line
    for (size_t li = 0; li < stripped.code.size(); ++li) {
        for (char c : stripped.code[li]) {
            joined.push_back(c);
            line_of.push_back(static_cast<int>(li) + 1);
        }
        joined.push_back('\n');
        line_of.push_back(static_cast<int>(li) + 1);
    }

    struct TypeToken
    {
        std::string token;
        bool unordered;   ///< always suspect; else needs ptr key
    };
    const std::vector<TypeToken> kTypes = {
        {"unordered_map", true},
        {"unordered_multimap", true},
        {"unordered_set", true},
        {"unordered_multiset", true},
        {"map", false},
        {"multimap", false},
        {"set", false},
        {"multiset", false},
    };

    auto scanToken = [&](const TypeToken &type, bool alias_pass) {
        size_t pos = 0;
        size_t at = 0;
        while (containsWord(joined, type.token, at, pos)) {
            pos = at + type.token.size();
            // Template opener directly after the token.
            size_t open = pos;
            while (open < joined.size() &&
                   (joined[open] == ' ' || joined[open] == '\n'))
                ++open;
            if (open >= joined.size() || joined[open] != '<')
                continue;

            bool pointer_keyed = false;
            if (!type.unordered) {
                std::string key = trim(firstTemplateArg(joined,
                                                        open + 1));
                if (key.empty() || key.back() != '*')
                    continue;
                pointer_keyed = true;
            }

            // Walk past the template argument list.
            int depth = 0;
            size_t i = open;
            for (; i < joined.size(); ++i) {
                if (joined[i] == '<')
                    ++depth;
                else if (joined[i] == '>' && --depth == 0)
                    break;
            }
            if (i >= joined.size())
                continue;
            ++i;

            // Check for a `using Alias =` introducer to the left.
            size_t stmt = joined.find_last_of(";{}\n", at);
            std::string before = joined.substr(
                stmt == std::string::npos ? 0 : stmt + 1,
                at - (stmt == std::string::npos ? 0 : stmt + 1));
            size_t eq = before.find('=');
            if (before.find("using ") != std::string::npos &&
                eq != std::string::npos) {
                size_t p = before.find("using ") + 6;
                std::string alias = nextIdent(before, p);
                if (!alias.empty()) {
                    (pointer_keyed ? ptr_aliases
                                   : unordered_aliases)
                        .insert(alias);
                }
                continue;
            }
            if (alias_pass)
                continue;

            // Declarator list: identifiers until ';', '=', '(',
            // '{', or ')'. Stop early on control characters that
            // mean this was an expression, cast, or parameter.
            while (i < joined.size()) {
                while (i < joined.size() &&
                       (joined[i] == ' ' || joined[i] == '\n' ||
                        joined[i] == '&' || joined[i] == '*'))
                    ++i;
                if (i >= joined.size() ||
                    !isIdentChar(joined[i]))
                    break;
                size_t name_at = i;
                std::string name = nextIdent(joined, i);
                while (i < joined.size() &&
                       (joined[i] == ' ' || joined[i] == '\n'))
                    ++i;
                char term =
                    i < joined.size() ? joined[i] : '\0';
                if (term == ';' || term == '=' || term == ',' ||
                    term == '{') {
                    tracked.push_back({name, line_of[name_at],
                                       pointer_keyed});
                }
                if (term != ',')
                    break;
                ++i;
            }
        }
    };

    for (const TypeToken &type : kTypes)
        scanToken(type, /*alias_pass=*/true);
    for (const TypeToken &type : kTypes)
        scanToken(type, /*alias_pass=*/false);

    // Second pass: variables declared with a recorded alias type.
    for (const auto &[aliases, pointer_keyed] :
         {std::make_pair(&unordered_aliases, false),
          std::make_pair(&ptr_aliases, true)}) {
        for (const std::string &alias : *aliases) {
            size_t pos = 0;
            size_t at = 0;
            while (containsWord(joined, alias, at, pos)) {
                pos = at + alias.size();
                size_t i = pos;
                while (i < joined.size() &&
                       (joined[i] == ' ' || joined[i] == '\n' ||
                        joined[i] == '&'))
                    ++i;
                if (i >= joined.size() || !isIdentChar(joined[i]))
                    continue;
                size_t name_at = i;
                std::string name = nextIdent(joined, i);
                while (i < joined.size() &&
                       (joined[i] == ' ' || joined[i] == '\n'))
                    ++i;
                char term = i < joined.size() ? joined[i] : '\0';
                if (term == ';' || term == '=' || term == '{') {
                    tracked.push_back({name, line_of[name_at],
                                       pointer_keyed});
                }
            }
        }
    }
    return tracked;
}

// ---------------------------------------------------------------
// Rules
// ---------------------------------------------------------------

void
checkWallClock(const std::string &path, const Stripped &s,
               std::vector<Finding> &out)
{
    static const std::vector<std::string> kWords = {
        "system_clock",     "steady_clock", "high_resolution_clock",
        "gettimeofday",     "clock_gettime", "localtime",
        "gmtime",           "mktime",
    };
    static const std::vector<std::string> kCalls = {"time", "clock"};
    for (size_t li = 0; li < s.code.size(); ++li) {
        const std::string &line = s.code[li];
        const int line_no = static_cast<int>(li) + 1;
        if (allowed(s, "wall-clock", line_no))
            continue;
        for (const std::string &word : kWords) {
            if (containsWord(line, word)) {
                out.push_back({path, line_no, "wall-clock",
                               "wall-clock source `" + word +
                                   "`; simulated time must come "
                                   "from sim::EventQueue"});
            }
        }
        for (const std::string &call : kCalls) {
            if (callsFunction(line, call)) {
                out.push_back({path, line_no, "wall-clock",
                               "wall-clock call `" + call +
                                   "()`; simulated time must come "
                                   "from sim::EventQueue"});
            }
        }
    }
}

void
checkRawRandom(const std::string &path, const Stripped &s,
               std::vector<Finding> &out)
{
    // The deterministic engine home may name engines in its own
    // implementation (seeding helpers, docs fixtures).
    if (path.find("sim/random.") != std::string::npos)
        return;
    static const std::vector<std::string> kWords = {
        "random_device", "mt19937",  "mt19937_64",
        "minstd_rand",   "drand48",  "lrand48",
        "default_random_engine",
    };
    static const std::vector<std::string> kCalls = {"rand", "srand"};
    for (size_t li = 0; li < s.code.size(); ++li) {
        const std::string &line = s.code[li];
        const int line_no = static_cast<int>(li) + 1;
        if (allowed(s, "raw-random", line_no))
            continue;
        for (const std::string &word : kWords) {
            if (containsWord(line, word)) {
                out.push_back({path, line_no, "raw-random",
                               "nondeterministic randomness `" +
                                   word +
                                   "`; use sim::Rng forks "
                                   "(sim/random.hh)"});
            }
        }
        for (const std::string &call : kCalls) {
            if (callsFunction(line, call)) {
                out.push_back({path, line_no, "raw-random",
                               "nondeterministic call `" + call +
                                   "()`; use sim::Rng forks "
                                   "(sim/random.hh)"});
            }
        }
    }
}

void
checkIteration(const std::string &path, const Stripped &s,
               const std::vector<TrackedName> &extra_tracked,
               std::vector<Finding> &out)
{
    std::vector<TrackedName> tracked = collectTrackedNames(s);
    tracked.insert(tracked.end(), extra_tracked.begin(),
                   extra_tracked.end());
    if (tracked.empty())
        return;

    auto report = [&](const TrackedName &t, int line_no,
                      const std::string &how) {
        const char *rule =
            t.pointer_keyed ? "ptr-map-iter" : "unordered-iter";
        if (allowed(s, rule, line_no))
            return;
        std::string why =
            t.pointer_keyed
                ? "pointer-keyed ordered container: iteration "
                  "order follows addresses (ASLR-dependent)"
                : "hash-table iteration order is unspecified";
        out.push_back(
            {path, line_no, rule,
             how + " over `" + t.name + "` (declared line " +
                 std::to_string(t.line) + "): " + why +
                 "; use std::map/vector or annotate "
                 "simlint:allow(" + rule + ": <reason>)"});
    };

    for (size_t li = 0; li < s.code.size(); ++li) {
        const std::string &line = s.code[li];
        const int line_no = static_cast<int>(li) + 1;
        // Range-for over a tracked name: the name appears after the
        // ':' inside a for(...) — approximate by requiring "for"
        // and ":" on the line (possibly continued from previous
        // line for multi-line for-headers).
        for (const TrackedName &t : tracked) {
            size_t at = 0;
            if (!containsWord(line, t.name, at))
                continue;
            // `name.begin()` / `name.end()` / cbegin / cend.
            size_t after = at + t.name.size();
            while (after < line.size() && line[after] == ' ')
                ++after;
            if (after < line.size() && line[after] == '.') {
                size_t m = after + 1;
                std::string member = nextIdent(line, m);
                // `.end()` alone is the find-compare idiom; only a
                // `begin` actually starts an iteration.
                if (member == "begin" || member == "cbegin" ||
                    member == "rbegin") {
                    report(t, line_no, "iterator loop");
                    continue;
                }
            }
            // Range-for: look back for ':' then 'for ('. Also
            // catch for-headers split across two lines.
            std::string head = line.substr(0, at);
            size_t colon = head.find_last_of(':');
            bool has_colon =
                colon != std::string::npos &&
                (colon == 0 || head[colon - 1] != ':') &&
                (colon + 1 >= head.size() ||
                 head[colon + 1] != ':');
            if (!has_colon)
                continue;
            std::string context = head;
            if (li > 0)
                context = s.code[li - 1] + " " + context;
            size_t f = 0;
            if (containsWord(context, "for", f))
                report(t, line_no, "ranged-for");
        }
    }
}

void
checkMetricNames(const std::string &path, const Stripped &s,
                 std::vector<Finding> &out)
{
    static const std::vector<std::string> kCalls = {
        "counter", "sampler", "histogram", "timeWeighted", "gauge",
        "uniquePrefix",
    };
    auto validSegment = [](const std::string &seg) {
        if (seg.empty())
            return false;
        for (char c : seg) {
            if (!(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '#'))
                return false;
        }
        return true;
    };
    auto validPath = [&](const std::string &text) {
        if (text.empty())
            return true; // empty literal: not a path fragment
        size_t start = 0;
        bool first = true;
        while (start <= text.size()) {
            size_t dot = text.find('.', start);
            bool last = dot == std::string::npos;
            std::string seg = text.substr(
                start, last ? std::string::npos : dot - start);
            // Literals are concatenated around prefix variables, so
            // a leading '.' (suffix literal) or trailing '.'
            // (prefix literal) leaves an empty edge segment — fine.
            if (!((first || last) && seg.empty()) &&
                !validSegment(seg))
                return false;
            first = false;
            if (last)
                break;
            start = dot + 1;
        }
        return true;
    };

    for (size_t li = 0; li < s.code.size(); ++li) {
        const std::string &line = s.code[li];
        const int line_no = static_cast<int>(li) + 1;
        bool is_call = false;
        for (const std::string &call : kCalls) {
            size_t at = 0;
            if (containsWord(line, call, at) && at > 0 &&
                line[at - 1] == '.' &&
                callsFunction(line, call, at)) {
                is_call = true;
                break;
            }
        }
        if (!is_call || allowed(s, "metric-name", line_no))
            continue;
        // Literals on the call line or the two continuation lines
        // (registration statements wrap in this codebase).
        for (const Literal &lit : s.literals) {
            if (lit.line < line_no || lit.line > line_no + 2)
                continue;
            if (!validPath(lit.text)) {
                out.push_back(
                    {path, lit.line, "metric-name",
                     "metric path literal \"" + lit.text +
                         "\" violates the DESIGN.md §6c grammar "
                         "(lowercase [a-z0-9_#] segments joined "
                         "with '.')"});
            }
        }
    }
}

/**
 * Flags the lookup-then-record idiom: a registry/string lookup call
 * chained directly into a recording method, e.g.
 * `metrics().counter("x").increment()`. That re-pays the string-map
 * lookup on every event; per-I/O code must resolve a
 * CounterHandle/SamplerHandle once at registration and record
 * through it (sim/metrics.hh). Registration alone — assigning the
 * returned handle — is fine and not matched.
 */
void
checkMetricHandle(const std::string &path, const Stripped &s,
                  std::vector<Finding> &out)
{
    static const std::vector<std::string> kLookups = {
        "counter",       "sampler",
        "histogram",     "timeWeighted",
        "findCounter",   "findSampler",
        "findHistogram", "findTimeWeighted",
    };
    static const std::vector<std::string> kRecords = {
        "increment",
        "add",
        "set",
        "adjust",
    };

    // Chains wrap across lines, so scan the joined text.
    std::string joined;
    std::vector<int> line_of; // joined offset -> 1-based line
    for (size_t li = 0; li < s.code.size(); ++li) {
        for (char c : s.code[li]) {
            joined.push_back(c);
            line_of.push_back(static_cast<int>(li) + 1);
        }
        joined.push_back('\n');
        line_of.push_back(static_cast<int>(li) + 1);
    }
    auto skipSpace = [&](size_t i) {
        while (i < joined.size() &&
               (joined[i] == ' ' || joined[i] == '\n' ||
                joined[i] == '\t'))
            ++i;
        return i;
    };

    for (const std::string &call : kLookups) {
        size_t pos = 0;
        size_t at = 0;
        while (containsWord(joined, call, at, pos)) {
            pos = at + call.size();
            // Member call only: `x.counter(` / `x->counter(`.
            if (at == 0 || (joined[at - 1] != '.' &&
                            joined[at - 1] != '>'))
                continue;
            size_t i = skipSpace(pos);
            if (i >= joined.size() || joined[i] != '(')
                continue;
            int depth = 0;
            for (; i < joined.size(); ++i) {
                if (joined[i] == '(')
                    ++depth;
                else if (joined[i] == ')' && --depth == 0)
                    break;
            }
            if (i >= joined.size())
                continue;
            i = skipSpace(i + 1);
            if (i >= joined.size() || joined[i] != '.')
                continue;
            i = skipSpace(i + 1);
            if (i >= joined.size() || !isIdentChar(joined[i]))
                continue;
            std::string member = nextIdent(joined, i);
            if (std::find(kRecords.begin(), kRecords.end(),
                          member) == kRecords.end())
                continue;
            const int line_no = line_of[at];
            if (allowed(s, "metric-handle", line_no))
                continue;
            out.push_back(
                {path, line_no, "metric-handle",
                 "metric looked up and recorded in one expression "
                 "(`." +
                     call + "(...)." + member +
                     "(...)`): the string lookup runs per event; "
                     "resolve a handle at registration "
                     "(sim/metrics.hh) or annotate "
                     "simlint:allow(metric-handle: <reason>)"});
        }
    }
}

} // namespace

namespace
{

std::vector<Finding>
lint(const std::string &path, const std::string &content,
     const std::vector<TrackedName> &header_tracked)
{
    Stripped stripped = strip(path, content);
    std::vector<Finding> findings = stripped.annotation_findings;
    checkWallClock(path, stripped, findings);
    checkRawRandom(path, stripped, findings);
    checkIteration(path, stripped, header_tracked, findings);
    checkMetricNames(path, stripped, findings);
    checkMetricHandle(path, stripped, findings);
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    findings.erase(
        std::unique(findings.begin(), findings.end(),
                    [](const Finding &a, const Finding &b) {
                        return a.line == b.line &&
                               a.rule == b.rule &&
                               a.message == b.message;
                    }),
        findings.end());
    return findings;
}

bool
readWhole(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // namespace

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    return lint(path, content, {});
}

std::vector<Finding>
lintFile(const std::string &path)
{
    std::string content;
    if (!readWhole(path, content))
        return {{path, 0, "io", "cannot read file"}};

    // Members are typically declared in the companion header and
    // iterated in the .cc — pull the header's tracked names in so
    // cross-file iteration is visible.
    std::vector<TrackedName> header_tracked;
    size_t dot = path.rfind('.');
    if (dot != std::string::npos && path.substr(dot) == ".cc") {
        for (const char *ext : {".hh", ".h", ".hpp"}) {
            std::string header_text;
            if (readWhole(path.substr(0, dot) + ext, header_text)) {
                Stripped header =
                    strip(path, header_text);
                header_tracked = collectTrackedNames(header);
                // The header's own allows don't transfer; require
                // annotations at the use site.
                break;
            }
        }
    }
    return lint(path, content, header_tracked);
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) +
           ": [" + finding.rule + "] " + finding.message;
}

} // namespace v3sim::simlint
