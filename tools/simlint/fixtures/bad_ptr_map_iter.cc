// Fixture: pointer-keyed ordered containers iterate in address
// order, which ASLR reshuffles run to run.
#include <map>
#include <set>

struct Client;

struct Registry
{
    std::map<Client *, int> refs;
    std::set<const Client *> live;
};

int
total(Registry &reg)
{
    int sum = 0;
    for (auto &[client, count] : reg.refs)          // line 18
        sum += count;
    for (auto it = reg.live.begin(); it != reg.live.end(); ++it) // line 20
        ++sum;
    // Value-keyed ordered maps are fine — must NOT trigger:
    std::map<int, Client *> by_id;
    for (auto &[id, client] : by_id)
        sum += id;
    return sum + static_cast<int>(reg.refs.size());
}
