// Fixture: a by-name lookup of a path never registered anywhere in
// the scanned tree — the seeded typo (missing 's') reads as a
// silent zero at runtime. Only the cross-TU pass can tell.

struct Registry
{
    const int *findCounter(const char *path);
};

const int *
probe(Registry &r)
{
    return r.findCounter("demo.total_io");
}
