// Fixture: pulls banned_hdr.hh in; the attribution on the header's
// finding counts this TU.
#include "banned_hdr.hh"

unsigned
width()
{
    return hw_threads();
}
