// Fixture: every wall-clock source the rule must catch.
#include <chrono>
#include <ctime>
#include <sys/time.h>

unsigned long
now_ms()
{
    auto t = std::chrono::system_clock::now();      // line 9
    auto s = std::chrono::steady_clock::now();      // line 10
    std::time_t raw = time(nullptr);                // line 11
    struct timeval tv;
    gettimeofday(&tv, nullptr);                     // line 13
    (void)t;
    (void)s;
    (void)raw;
    return static_cast<unsigned long>(tv.tv_sec);
}

// Strings and comments must NOT trigger: "time (us)" is a label,
// and this comment mentions system_clock harmlessly.
const char *label = "response time (us)";
