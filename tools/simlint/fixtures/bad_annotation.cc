// Fixture: suppression annotations must carry a reason.
#include <unordered_map>

int
f()
{
    std::unordered_map<int, int> m;
    int total = 0;
    // simlint:allow(unordered-iter)
    for (auto &[k, v] : m)
        total += v;
    // simlint:allow(unordered-iter:   )
    for (auto &[k, v] : m)
        total += v;
    return total;
}
