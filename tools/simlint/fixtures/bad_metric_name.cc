// Fixture: metric registration literals that break the DESIGN.md
// §6c dotted-path grammar (lowercase [a-z0-9_#] segments).
struct Registry
{
    int &counter(const char *path);
    void gauge(const char *path, double value);
};

void
registerMetrics(Registry &metrics, const char *prefix)
{
    (void)prefix;
    metrics.counter("Server.Reads");              // line 13: uppercase
    metrics.counter("server..reads");             // line 14: empty seg
    metrics.gauge("server.hit-ratio", 0.0);       // line 15: dash
    // Conforming paths must NOT trigger:
    metrics.counter("server.v3#2.cache.hits");
    metrics.counter(".latency_hist_ns");
    metrics.gauge("nic.host0.pinned_bytes", 1.0);
}
