// Fixture: a header that drags <thread> into every includer — the
// include-graph pass attributes the blast radius.
#ifndef FIXTURE_BANNED_HDR_HH
#define FIXTURE_BANNED_HDR_HH

#include <thread>

inline unsigned
hw_threads()
{
    return 1;
}

#endif
