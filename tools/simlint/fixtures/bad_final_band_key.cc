// Fixture: pointers and addresses must never become arbitration or
// sort keys (§8.3): ASLR reshuffles address order run-to-run.
#include <cstdint>

struct Buffer
{
    int id;
};

bool
older(Buffer *a, Buffer *b)
{
    return a < b;
}

unsigned long
key(Buffer *buf)
{
    return reinterpret_cast<uintptr_t>(buf);
}
