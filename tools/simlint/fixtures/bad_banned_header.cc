// Fixture: headers that smuggle wall clocks, threads or raw
// randomness into the tree are rejected at the include line.
#include <thread>
#include <mutex>
#include <vector>

int
workers()
{
    return 4;
}
