// Fixture: every nondeterministic randomness source the rule must
// catch. sim::Rng forks are the only sanctioned randomness.
#include <cstdlib>
#include <random>

int
roll()
{
    std::random_device rd;                      // line 9
    std::mt19937 gen(rd());                     // line 10
    int base = rand() % 6;                      // line 11
    srand(42);                                  // line 12
    return base + static_cast<int>(gen());
}
