// Fixture: the v1 blind spot — a member declared via an alias from
// another TU, iterated with a structured binding. Per-file analysis
// cannot see the alias; the cross-TU pass must.
#include "alias_types.hh"

struct Conn
{
    net::SeqMap seqs;
};

unsigned long
sum(const Conn &conn)
{
    unsigned long total = 0;
    for (const auto &[ep, seq] : conn.seqs)
        total += seq;
    return total;
}
