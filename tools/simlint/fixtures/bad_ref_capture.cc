// Fixture: by-reference captures handed to schedule*/EventFn escape
// their frame: the callback fires ticks later, the locals are gone.
#include <functional>

using EventFn = std::function<void()>;

struct Queue
{
    void schedule(long t, EventFn f);
    void scheduleFinal(long t, EventFn f);
};

void
arm(Queue &q)
{
    int local = 0;
    q.schedule(10, [&] { ++local; });
    q.scheduleFinal(20, [&local] { ++local; });
    EventFn fn = [&] { ++local; };
    q.schedule(30, fn);
}
