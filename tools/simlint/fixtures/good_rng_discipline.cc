// Fixture: the sanctioned pattern — every stream is forked from the
// simulation's root RNG, so one run seed governs all of them.
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace model
{

struct Shaper
{
    explicit Shaper(sim::Simulation &sim)
        : jitter_(sim.forkRng("model.shaper.jitter"))
    {
    }

    sim::Rng jitter_;
};

} // namespace model
