// Fixture: value captures and [this] handed to the queue are safe —
// nothing here may fire.
#include <functional>

using EventFn = std::function<void()>;

struct Queue
{
    void schedule(long t, EventFn f);
};

struct Driver
{
    Queue q;
    int fired = 0;

    void arm(long when)
    {
        q.schedule(when, [this] { ++fired; });
        int snapshot = fired;
        q.schedule(when + 1, [snapshot] { (void)snapshot; });
    }
};
