// Fixture: model code must not construct sim::Rng from a literal
// seed: every stream derives from Simulation::forkRng().
#include "sim/random.hh"

namespace model
{

struct Shaper
{
    sim::Rng jitter{12345};
};

long
sample()
{
    sim::Rng rng(42);
    return static_cast<long>(rng.next());
}

} // namespace model
