// Fixture: iteration over hash-ordered containers, in the shapes
// the repo actually uses (ranged-for with structured bindings,
// erase loops, multi-line member declarations, using-aliases).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Conn
{
    std::unordered_map<uint64_t, int> seqs;
    std::unordered_set<uint32_t>
        tainted_slots; // multi-line declaration
};

using LoadingMap = std::unordered_map<uint64_t, int>;

int
sweep(Conn &conn)
{
    LoadingMap loading;
    int total = 0;
    for (auto &[id, st] : conn.seqs)                // line 22
        total += st;
    for (auto it = loading.begin(); it != loading.end();) // line 24
        it = loading.erase(it);
    for (uint32_t slot : conn.tainted_slots)        // line 26
        total += static_cast<int>(slot);
    // Point access is fine — must NOT trigger:
    loading[7] = 1;
    conn.seqs.erase(3);
    return total + static_cast<int>(conn.seqs.count(1));
}
