// Fixture: string-keyed metric lookup chained straight into a
// recording call; hot paths must go through handles resolved at
// registration (the metric-handle rule).
struct Registry
{
    struct Counter
    {
        void increment(unsigned by = 1);
    };
    struct Sampler
    {
        void add(double sample);
    };
    Counter &counter(const char *path);
    Sampler &sampler(const char *path);
    const Counter *findCounter(const char *path);
};

void
perIoPath(Registry &metrics, double latency)
{
    metrics.counter("client.ios").increment();
    metrics.sampler("client.latency_ns").add(latency);
    metrics.counter("client.retries")
        .increment(2);
    metrics.findCounter("client.ios");
    // Registration alone must NOT trigger:
    Registry::Counter &ok = metrics.counter("client.ok");
    (void)ok;
    // simlint:allow(metric-handle: cold path, measured)
    metrics.counter("client.allowed").increment();
}
