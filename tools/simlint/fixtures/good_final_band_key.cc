// Fixture: content keys order contenders deterministically — none
// of the final-band-key shapes may fire on member compares.
#include <cstdint>

struct Buffer
{
    uint64_t seq;
    int id;
};

bool
older(Buffer *a, Buffer *b)
{
    if (a->seq != b->seq)
        return a->seq < b->seq;
    return a->id < b->id;
}
