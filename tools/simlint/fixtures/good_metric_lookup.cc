// Fixture: lookups that resolve against metric_defs.cc — exact,
// via the uniquePrefix() base, and via a suffix fragment.

struct Registry
{
    const int *findCounter(const char *path);
    const double *findSampler(const char *path);
    bool contains(const char *path);
};

bool
check(Registry &r)
{
    bool ok = r.findCounter("demo.total_ios") != nullptr;
    ok = ok && r.findSampler("client.kdsa0.latency_ns") != nullptr;
    ok = ok && r.contains("client.kdsa1.bytes");
    return ok;
}
