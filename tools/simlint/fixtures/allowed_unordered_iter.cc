// Fixture: a justified annotation suppresses the unordered-iter
// finding (same line or the line above), and allow-file covers the
// whole file for its rule.
// simlint:allow-file(metric-name: fixture exercises odd literals)
#include <unordered_map>

struct Registry
{
    int &counter(const char *path);
};

int
drain(std::unordered_map<int, int> &m, Registry &metrics)
{
    int total = 0;
    // simlint:allow(unordered-iter: sum is commutative, order free)
    for (auto &[k, v] : m)
        total += v;
    for (auto it = m.begin(); // simlint:allow(unordered-iter: drain erases every entry, order free)
         it != m.end();)
        it = m.erase(it);
    metrics.counter("Covered.By.Allow-File");
    return total;
}
