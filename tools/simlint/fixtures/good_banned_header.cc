// Fixture: the allow-file escape hatch names the rule and carries a
// reason; the include is then sanctioned and inventoried.
// simlint:allow-file(banned-header: fixture demonstrates the sanctioned escape hatch)
#include <chrono>
#include <vector>

double
tick()
{
    return 0.0;
}
