// Fixture: container alias exported for the cross-TU blind-spot
// test — defined here, consumed by bad_alias_iter.cc, which never
// resolves it under per-file analysis.
#ifndef FIXTURE_ALIAS_TYPES_HH
#define FIXTURE_ALIAS_TYPES_HH

#include <cstdint>
#include <unordered_map>

namespace net
{

using SeqMap = std::unordered_map<uint64_t, uint64_t>;

} // namespace net

#endif
