// Fixture: representative conforming code — none of the rules may
// fire here. Mirrors the idioms src/ actually uses.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Registry
{
    int &counter(const std::string &path);
    void gauge(const std::string &path, double value);
};

struct Server
{
    // Point-access-only hash maps are fine.
    std::unordered_map<uint64_t, int> pending;
    // Ordered map: iteration is deterministic.
    std::map<uint64_t, int> dirty;
    std::string metric_prefix;

    int
    flush(Registry &metrics)
    {
        int total = 0;
        for (auto &[offset, len] : dirty)
            total += len;
        dirty.clear();
        auto it = pending.find(7);
        if (it != pending.end())
            total += it->second;
        metrics.counter(metric_prefix + ".flushes") += 1;
        metrics.gauge(metric_prefix + ".dirty_bytes", 0.0);
        // Strings may mention time() and rand() freely; runtime
        // labels like "service time (ms)" are data, not code.
        const char *label = "service time (ms), rand() disabled";
        return total + static_cast<int>(sizeof(label));
    }
};
