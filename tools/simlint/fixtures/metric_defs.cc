// Fixture: metric registrations feeding the cross-TU index tests —
// a full path, a uniquePrefix() base and a suffix fragment.
#include <string>

struct Registry
{
    int &counter(const std::string &path);
    double &sampler(const std::string &path);
    std::string uniquePrefix(const std::string &base);
};

void
wire(Registry &r)
{
    r.counter("demo.total_ios");
    std::string prefix = r.uniquePrefix("client.kdsa");
    r.sampler(prefix + ".latency_ns");
}
