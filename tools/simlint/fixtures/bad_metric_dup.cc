// Fixture: the same full path registered a second time — both
// series silently merge into one.

struct Registry
{
    int &counter(const char *path);
};

void
rewire(Registry &r)
{
    r.counter("demo.total_ios");
}
