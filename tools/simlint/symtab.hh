/**
 * @file
 * simlint per-TU symbol table: lightweight declaration tracking over
 * the token stream.
 *
 * Three kinds of symbols feed the rules:
 *
 *  - tracked container variables: names declared with an unordered
 *    container type (unordered-iter) or a pointer-keyed ordered
 *    map/set (ptr-map-iter), including multi-line declarations and
 *    declarator lists;
 *  - `using` aliases of those container types. Aliases resolve
 *    transitively, and — crucially — through an optional *global*
 *    alias table built by the cross-TU pass, so an alias defined in
 *    one header and used to declare a member in another TU still
 *    marks that member as tracked (the v1 analyzer only saw aliases
 *    in the same TU);
 *  - pointer-typed names (`T *name`), consumed by the final-band-key
 *    rule to spot pointer relational compares in comparators.
 */

#ifndef V3SIM_TOOLS_SIMLINT_SYMTAB_HH
#define V3SIM_TOOLS_SIMLINT_SYMTAB_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace v3sim::simlint
{

/** Why a container's iteration order is suspect. */
enum class ContainerKind
{
    Unordered, ///< hash-table order (unordered-iter)
    PtrKeyed,  ///< address order (ptr-map-iter)
};

/** A variable/member declared with a suspect container type. */
struct TrackedVar
{
    std::string name;
    int line = 0;
    ContainerKind kind = ContainerKind::Unordered;
};

/** Per-TU declarations relevant to the rules. */
struct SymbolTable
{
    /** alias name -> what container family it names. */
    std::map<std::string, ContainerKind> aliases;
    /** variables declared with a suspect container (or alias). */
    std::vector<TrackedVar> tracked;
    /** names declared pointer-typed (`T *name`), incl. parameters. */
    std::set<std::string> pointer_names;
};

/**
 * Builds the symbol table from a token stream. @p global_aliases,
 * when given, seeds alias resolution with aliases exported by other
 * TUs (the cross-TU pass); the TU's own aliases still take
 * precedence on a name collision.
 */
SymbolTable
buildSymbols(const std::vector<Token> &tokens,
             const std::map<std::string, ContainerKind>
                 *global_aliases = nullptr);

} // namespace v3sim::simlint

#endif // V3SIM_TOOLS_SIMLINT_SYMTAB_HH
