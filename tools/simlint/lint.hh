/**
 * @file
 * simlint v2: the project's determinism-contract static analyzer.
 *
 * A dependency-free multi-pass analyzer (no libclang) that enforces
 * the invariants every BENCH_*.json trajectory relies on — see
 * DESIGN.md §8 "Determinism contract". It is built from three
 * layers:
 *
 *  1. a real lexer (lexer.hh): comments/literals are stripped with
 *     line fidelity, then the code is tokenized into an
 *     identifier/number/string/punctuation stream;
 *  2. a lightweight per-TU symbol table (symtab.hh): container
 *     declarations, `using` aliases and pointer-typed names, with
 *     companion-header (.hh next to .cc) declarations merged in;
 *  3. per-TU rules plus a second, cross-TU pass over the whole repo
 *     (lintRepo): a repo-wide alias table (so an alias defined in
 *     one header and used in another TU still resolves), an include
 *     graph for the banned-header rule, and a metric index that
 *     cross-checks every registered dotted path against every
 *     by-name lookup.
 *
 * Rule families:
 *
 *  - wall-clock         no real-time sources (`system_clock`,
 *                       `time(`, `gettimeofday`, ...); simulated
 *                       time comes from sim::EventQueue only.
 *  - raw-random         no nondeterministic or unseeded randomness
 *                       (`rand(`, `std::random_device`,
 *                       `std::mt19937`); randomness flows through
 *                       sim::Rng forks.
 *  - unordered-iter     no iteration over `std::unordered_map/set`:
 *                       hash order is unspecified. Point lookups are
 *                       fine.
 *  - ptr-map-iter       no iteration over pointer-keyed ordered
 *                       `std::map/set`: address order changes
 *                       run-to-run under ASLR.
 *  - metric-name        registration literals follow the DESIGN.md
 *                       §6c dotted-path grammar.
 *  - metric-handle      no string-keyed metric lookup chained into a
 *                       recording call on a hot path; resolve a
 *                       handle at registration.
 *  - final-band-key     no pointers or addresses as arbitration /
 *                       sort keys (pointer relational compares,
 *                       `uintptr_t` casts): the §8.3 final band must
 *                       order contenders by content, never address.
 *  - ref-capture-escape no `[&]`/by-reference lambda captures handed
 *                       to `schedule*`/`spawn`/`EventFn`: the
 *                       callback outlives the frame.
 *  - rng-discipline     no hard-coded RNG seeds in model code
 *                       (src/): every stream derives from
 *                       Simulation::forkRng(), the registered fork
 *                       point.
 *  - banned-header      include-graph rule: `<chrono>`, `<thread>`,
 *                       `<mutex>`, `<random>` & co. are rejected
 *                       outside explicitly annotated files.
 *  - metric-index       cross-TU: duplicate full-path registrations,
 *                       and by-name lookups of metrics never
 *                       registered anywhere in the scanned tree (a
 *                       typo reads as a silent zero).
 *  - annotation         malformed / reason-less suppression.
 *
 * Suppression grammar (reason is mandatory):
 *   // simlint:allow(<rule>: <reason>)        same or next line
 *   // simlint:allow-file(<rule>: <reason>)   whole file
 * Every accepted annotation is also recorded in the suppression
 * inventory (RepoReport::suppressions) so the repo-wide allow count
 * is a ratcheted number, not folklore (see checkRatchet).
 */

#ifndef V3SIM_TOOLS_SIMLINT_LINT_HH
#define V3SIM_TOOLS_SIMLINT_LINT_HH

#include <string>
#include <vector>

namespace v3sim::simlint
{

/** One rule violation at a source location. */
struct Finding
{
    std::string file;
    int line = 0;          ///< 1-based
    std::string rule;      ///< e.g. "wall-clock"
    std::string message;
};

/** One accepted simlint:allow / allow-file annotation. */
struct Suppression
{
    std::string file;
    int line = 0;          ///< 1-based annotation line
    std::string rule;      ///< rule being suppressed
    std::string reason;    ///< mandatory justification text
    bool file_scope = false;
};

/** Result of a whole-repo lint (lintRepo). */
struct RepoReport
{
    std::vector<Finding> findings;        ///< sorted by (file, line)
    std::vector<Suppression> suppressions;///< the allow inventory
    size_t files = 0;                     ///< inputs analyzed
};

/** Lints one translation unit given as text. Per-TU rules only —
 *  cross-TU rules (metric-index, alias routing, include-graph
 *  attribution) need lintRepo. @p path is used for reporting and
 *  for path-based rule exemptions. */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Reads and lints a file (per-TU rules plus companion-header
 *  declaration tracking). A read failure is reported as a finding
 *  with rule "io". */
std::vector<Finding> lintFile(const std::string &path);

/**
 * The full multi-pass analysis over a set of files: pass 1 builds
 * the repo-wide symbol/alias/metric/include context, pass 2 runs the
 * per-TU rules with that context plus the cross-TU rules. Findings
 * are sorted by (file, line, rule, message).
 */
RepoReport lintRepo(const std::vector<std::string> &paths);

/** Expands directories (recursively) into lintable files
 *  (.cc/.hh/.cpp/.hpp/.h), skipping directories named "fixtures",
 *  "build" or ".git". Explicit file arguments pass through. Unknown
 *  paths are returned in @p missing. Output is sorted. */
std::vector<std::string>
collectInputs(const std::vector<std::string> &roots,
              std::vector<std::string> *missing = nullptr);

/** Renders a finding as "file:line: [rule] message". */
std::string formatFinding(const Finding &finding);

/** Renders the whole report as a schema-1 JSON object: findings,
 *  the suppression inventory and per-rule suppression counts. */
std::string reportToJson(const RepoReport &report);

/** Per-rule suppression counts in the ratchet-baseline format:
 *  "total N" then "rule N" lines, sorted by rule. */
std::string suppressionSummary(const RepoReport &report);

/** Result of comparing a report against a suppression baseline. */
struct RatchetResult
{
    bool ok = true;        ///< false when any count exceeds baseline
    std::string detail;    ///< human-readable explanation
};

/**
 * The suppression ratchet: compares the report's per-rule allow
 * counts against a checked-in baseline (the suppressionSummary
 * format; '#' comments allowed). Any rule whose live count exceeds
 * its baseline fails; counts below baseline pass with a note that
 * the baseline can be tightened.
 */
RatchetResult checkRatchet(const RepoReport &report,
                           const std::string &baseline_text);

} // namespace v3sim::simlint

#endif // V3SIM_TOOLS_SIMLINT_LINT_HH
