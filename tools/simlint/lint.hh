/**
 * @file
 * simlint: the project's determinism-contract static analyzer.
 *
 * A dependency-free, token-level linter (no libclang) that enforces
 * the invariants every BENCH_*.json trajectory relies on — see
 * DESIGN.md §8 "Determinism contract". Rules:
 *
 *  - wall-clock      no real-time sources (`system_clock`,
 *                    `steady_clock`, `time(`, `gettimeofday`, ...);
 *                    simulated time comes from sim::EventQueue only.
 *  - raw-random      no nondeterministic or unseeded randomness
 *                    (`rand(`, `std::random_device`, `std::mt19937`);
 *                    all randomness flows through sim::Rng forks.
 *  - unordered-iter  no ranged-for / begin()/end() iteration over
 *                    `std::unordered_map/set`: hash-table order is
 *                    unspecified and any observable effect of it is
 *                    a determinism bug. Point lookups are fine.
 *  - ptr-map-iter    no iteration over pointer-keyed `std::map/set`:
 *                    address order changes run-to-run under ASLR.
 *  - metric-name     string literals passed to MetricRegistry
 *                    registration calls must follow the DESIGN.md §6c
 *                    dotted-path grammar (lowercase, [a-z0-9_#],
 *                    '.'-separated segments).
 *
 * Suppression grammar (reason is mandatory):
 *   // simlint:allow(<rule>: <reason>)        same or next line
 *   // simlint:allow-file(<rule>: <reason>)   whole file
 * A malformed or reason-less annotation is itself a finding (rule
 * "annotation").
 *
 * The analysis is intentionally heuristic: declarations are found by
 * scanning for container template tokens (multi-line declarations and
 * `using` aliases included), and iteration is matched against the
 * declared names. Comments and string/char literals are stripped
 * first so text in strings never triggers token rules.
 */

#ifndef V3SIM_TOOLS_SIMLINT_LINT_HH
#define V3SIM_TOOLS_SIMLINT_LINT_HH

#include <string>
#include <vector>

namespace v3sim::simlint
{

/** One rule violation at a source location. */
struct Finding
{
    std::string file;
    int line = 0;          ///< 1-based
    std::string rule;      ///< e.g. "wall-clock"
    std::string message;
};

/** Lints one translation unit given as text. @p path is used for
 *  reporting and for path-based rule exemptions (sim/random.* may
 *  reference engine names in comments/docs freely; the raw-random
 *  rule is still enforced there on code). */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Reads and lints a file. A read failure is reported as a finding
 *  with rule "io". */
std::vector<Finding> lintFile(const std::string &path);

/** Renders a finding as "file:line: [rule] message". */
std::string formatFinding(const Finding &finding);

} // namespace v3sim::simlint

#endif // V3SIM_TOOLS_SIMLINT_LINT_HH
