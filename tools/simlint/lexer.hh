/**
 * @file
 * simlint lexing layer: comment/literal stripping with line
 * fidelity, tokenization, and #include extraction.
 *
 * strip() turns raw source into a Stripped view: code lines with
 * comments and literals blanked (lengths preserved so line/column
 * arithmetic survives), the string literals recorded in order, and
 * suppression annotations parsed out of the comment text before it
 * is discarded. Each string literal leaves a '\x01' marker at its
 * opening quote so tokenize() can splice String tokens back into
 * the stream at the right position.
 *
 * tokenize() produces the token stream the symbol table and rules
 * operate on: identifiers, numbers, string literals and punctuation
 * (common multi-char operators merged), each carrying its 1-based
 * source line.
 */

#ifndef V3SIM_TOOLS_SIMLINT_LEXER_HH
#define V3SIM_TOOLS_SIMLINT_LEXER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace v3sim::simlint
{

/** A string literal found in the source (content only, no quotes). */
struct Literal
{
    int line = 0;
    std::string text;
};

/**
 * Comment/literal-stripped view of a translation unit. Lines keep
 * their length (stripped spans are blanked with spaces) so column
 * arithmetic and line numbers survive. Annotations are parsed from
 * the comment text before it is discarded.
 */
struct Stripped
{
    std::vector<std::string> code;      ///< blanked source lines
    std::vector<Literal> literals;      ///< string literals, in order
    /** line (1-based) -> rules allowed on that line and the next. */
    std::map<int, std::set<std::string>> allows;
    std::set<std::string> file_allows;  ///< allow-file rules
    std::vector<Suppression> suppressions; ///< accepted annotations
    std::vector<Finding> annotation_findings;

    /** True when @p rule is suppressed at @p line (same line, the
     *  line above, or file scope). */
    bool allowed(const std::string &rule, int line) const;
};

/** One pass over the raw text: blanks comments and literals, records
 *  string literals and annotations. @p path is used for reporting. */
Stripped strip(const std::string &path, const std::string &content);

/** Token kinds. */
enum class Tok : uint8_t
{
    Ident,   ///< identifier or keyword
    Number,  ///< numeric literal
    String,  ///< string literal (text = content, no quotes)
    Punct,   ///< operator / punctuation (multi-char ops merged)
};

/** One token with its source line. */
struct Token
{
    Tok kind = Tok::Punct;
    std::string text;
    int line = 0;

    bool is(const char *t) const { return text == t; }
    bool ident(const char *t) const
    {
        return kind == Tok::Ident && text == t;
    }
};

/** Tokenizes stripped code; literal markers become String tokens. */
std::vector<Token> tokenize(const Stripped &stripped);

/** One #include directive. */
struct IncludeDirective
{
    int line = 0;
    std::string target;  ///< e.g. "chrono" or "sim/event_queue.hh"
    bool system = false; ///< <...> (true) vs "..." (false)
};

/** Scans raw source text for #include directives. */
std::vector<IncludeDirective> scanIncludes(const std::string &content);

} // namespace v3sim::simlint

#endif // V3SIM_TOOLS_SIMLINT_LEXER_HH
