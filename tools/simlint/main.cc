/**
 * @file
 * simlint CLI. Usage:
 *
 *   simlint [--json[=FILE]] [--ratchet=FILE] <file-or-directory>...
 *
 * Directories are walked recursively for .cc/.hh/.cpp/.hpp/.h files
 * (skipping fixtures/, build/ and .git/). The whole input set is
 * analyzed as one repo (lintRepo) so the cross-TU rules — the metric
 * index, repo-wide alias resolution, include-graph attribution —
 * see everything at once.
 *
 * Output:
 *   default          findings as "file:line: [rule] message"
 *   --json           the schema-1 JSON report on stdout (replaces
 *                    the text findings)
 *   --json=FILE      text findings on stdout AND the JSON report
 *                    written to FILE (for CI artifacts)
 *   --ratchet=FILE   additionally compare the suppression inventory
 *                    against the checked-in baseline FILE; a count
 *                    above baseline fails the run
 *
 * Exit status: 0 clean, 1 findings or ratchet breach, 2 usage/IO
 * error.
 *
 * Registered with ctest as `simlint_repo` over src/, bench/,
 * tests/, tools/ and examples/ — the determinism contract
 * (DESIGN.md §8) is enforced on every test run, not just in CI.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

using v3sim::simlint::Finding;
using v3sim::simlint::RatchetResult;
using v3sim::simlint::RepoReport;

int
main(int argc, char **argv)
{
    bool json_stdout = false;
    std::string json_path;
    std::string ratchet_path;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json_stdout = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--ratchet=", 0) == 0) {
            ratchet_path = arg.substr(10);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "simlint: unknown flag: %s\n",
                         arg.c_str());
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        std::fprintf(stderr,
                     "usage: simlint [--json[=FILE]] "
                     "[--ratchet=FILE] <file-or-directory>...\n");
        return 2;
    }

    std::vector<std::string> missing;
    const std::vector<std::string> files =
        v3sim::simlint::collectInputs(roots, &missing);
    if (!missing.empty()) {
        for (const std::string &m : missing)
            std::fprintf(stderr, "simlint: no such input: %s\n",
                         m.c_str());
        return 2;
    }

    const RepoReport report = v3sim::simlint::lintRepo(files);

    if (json_stdout) {
        std::fputs(v3sim::simlint::reportToJson(report).c_str(),
                   stdout);
    } else {
        for (const Finding &finding : report.findings)
            std::printf(
                "%s\n",
                v3sim::simlint::formatFinding(finding).c_str());
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr,
                         "simlint: cannot write JSON report: %s\n",
                         json_path.c_str());
            return 2;
        }
        out << v3sim::simlint::reportToJson(report);
    }

    bool ratchet_ok = true;
    if (!ratchet_path.empty()) {
        std::ifstream in(ratchet_path);
        if (!in) {
            std::fprintf(stderr,
                         "simlint: cannot read ratchet baseline: "
                         "%s\n",
                         ratchet_path.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        const RatchetResult r =
            v3sim::simlint::checkRatchet(report, ss.str());
        std::fprintf(stderr, "simlint: %s\n", r.detail.c_str());
        ratchet_ok = r.ok;
    }

    if (!report.findings.empty()) {
        std::fprintf(
            stderr, "simlint: %zu finding%s in %zu file%s\n",
            report.findings.size(),
            report.findings.size() == 1 ? "" : "s", report.files,
            report.files == 1 ? "" : "s");
        return 1;
    }
    if (!json_stdout)
        std::fprintf(stderr,
                     "simlint: %zu files clean (%zu suppression%s "
                     "on record)\n",
                     report.files, report.suppressions.size(),
                     report.suppressions.size() == 1 ? "" : "s");
    return ratchet_ok ? 0 : 1;
}
