/**
 * @file
 * simlint CLI. Usage:
 *
 *   simlint <file-or-directory>...
 *
 * Directories are walked recursively for .cc/.hh/.cpp/.hpp/.h files.
 * Findings print as "file:line: [rule] message". Exit status: 0 when
 * clean, 1 when findings were reported, 2 on usage error.
 *
 * Registered with ctest as `simlint_repo` over src/, bench/ and
 * tests/ — the determinism contract (DESIGN.md §8) is enforced on
 * every test run, not just in CI.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;
using v3sim::simlint::Finding;

namespace
{

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: simlint <file-or-directory>...\n");
        return 2;
    }

    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const fs::path root(argv[i]);
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(root)) {
                if (entry.is_regular_file() &&
                    lintableExtension(entry.path()))
                    files.push_back(entry.path().string());
            }
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(root.string());
        } else {
            std::fprintf(stderr, "simlint: no such input: %s\n",
                         argv[i]);
            return 2;
        }
    }
    std::sort(files.begin(), files.end());

    size_t findings = 0;
    for (const std::string &file : files) {
        for (const Finding &finding :
             v3sim::simlint::lintFile(file)) {
            std::printf(
                "%s\n",
                v3sim::simlint::formatFinding(finding).c_str());
            ++findings;
        }
    }
    if (findings > 0) {
        std::printf("simlint: %zu finding%s in %zu file%s\n",
                    findings, findings == 1 ? "" : "s",
                    files.size(), files.size() == 1 ? "" : "s");
        return 1;
    }
    std::printf("simlint: %zu files clean\n", files.size());
    return 0;
}
