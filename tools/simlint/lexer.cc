#include "lexer.hh"

#include <cctype>
#include <sstream>

namespace v3sim::simlint
{

namespace
{

/** Marker left in stripped code at a string literal's opening
 *  quote; tokenize() splices the recorded literal back in here. */
constexpr char kLiteralMark = '\x01';

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parses allow/allow-file annotations out of one comment chunk.
 *  (The tag itself is spelled via kTag only: writing it literally in
 *  a comment here would trip the parser on its own source.) */
void
parseAnnotations(const std::string &path, const std::string &comment,
                 int line, Stripped &out)
{
    static const std::string kTag = "simlint:allow";
    size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string::npos) {
        size_t cursor = at + kTag.size();
        bool file_scope = false;
        if (comment.compare(cursor, 5, "-file") == 0) {
            file_scope = true;
            cursor += 5;
        }
        auto bad = [&](const std::string &why) {
            out.annotation_findings.push_back(
                {path, line, "annotation", why});
        };
        if (cursor >= comment.size() || comment[cursor] != '(') {
            // Prose mention of the tag (docs, commit references):
            // only the '(' form is an annotation.
            at = cursor;
            continue;
        }
        // Match the closing ')' by depth: reasons may themselves
        // mention calls like run().
        size_t close = std::string::npos;
        int depth = 0;
        for (size_t i = cursor; i < comment.size(); ++i) {
            if (comment[i] == '(') {
                ++depth;
            } else if (comment[i] == ')' && --depth == 0) {
                close = i;
                break;
            }
        }
        if (close == std::string::npos) {
            bad("malformed simlint:allow annotation (missing ')')");
            break;
        }
        std::string body =
            comment.substr(cursor + 1, close - cursor - 1);
        if (body.find('<') != std::string::npos ||
            body.find('>') != std::string::npos) {
            // Grammar documentation ("<rule>: <reason>"), not an
            // annotation.
            at = close;
            continue;
        }
        size_t colon = body.find(':');
        if (colon == std::string::npos) {
            bad("simlint:allow needs \"rule: reason\"");
        } else {
            std::string rule = trim(body.substr(0, colon));
            std::string reason = trim(body.substr(colon + 1));
            if (rule.empty() || reason.empty()) {
                bad("simlint:allow needs a rule and a non-empty "
                    "reason");
            } else {
                if (file_scope)
                    out.file_allows.insert(rule);
                else
                    out.allows[line].insert(rule);
                out.suppressions.push_back(
                    {path, line, rule, reason, file_scope});
            }
        }
        at = close;
    }
}

} // namespace

bool
Stripped::allowed(const std::string &rule, int line) const
{
    if (file_allows.count(rule))
        return true;
    for (int l : {line, line - 1}) {
        auto it = allows.find(l);
        if (it != allows.end() && it->second.count(rule))
            return true;
    }
    return false;
}

Stripped
strip(const std::string &path, const std::string &content)
{
    Stripped out;
    std::vector<std::string> lines;
    {
        std::string line;
        std::istringstream in(content);
        while (std::getline(in, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            lines.push_back(line);
        }
    }

    enum class State
    {
        Normal,
        BlockComment,
        String,
        RawString,
        Char,
    };
    State state = State::Normal;
    std::string raw_delim;      // for RawString: the ")delim" closer
    std::string literal;        // accumulating string literal text
    int literal_line = 0;

    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string &src = lines[li];
        std::string code(src.size(), ' ');
        const int line_no = static_cast<int>(li) + 1;
        char prev_code = '\0';  // last non-blanked char emitted

        for (size_t i = 0; i < src.size(); ++i) {
            char c = src[i];
            char next = i + 1 < src.size() ? src[i + 1] : '\0';
            switch (state) {
            case State::Normal:
                if (c == '/' && next == '/') {
                    parseAnnotations(path, src.substr(i), line_no,
                                     out);
                    i = src.size();
                } else if (c == '/' && next == '*') {
                    // Block comment: collect its text (to end of
                    // line at least) for annotations.
                    size_t close = src.find("*/", i + 2);
                    parseAnnotations(
                        path,
                        src.substr(i, close == std::string::npos
                                          ? std::string::npos
                                          : close - i),
                        line_no, out);
                    if (close != std::string::npos) {
                        i = close + 1;
                    } else {
                        state = State::BlockComment;
                        i = src.size();
                    }
                } else if (c == '"') {
                    code[i] = kLiteralMark;
                    if (prev_code == 'R') {
                        // Drop the raw-string 'R' prefix from the
                        // code view so it never reads as an ident.
                        if (i > 0 && src[i - 1] == 'R')
                            code[i - 1] = ' ';
                        size_t open = src.find('(', i + 1);
                        if (open == std::string::npos)
                            open = src.size();
                        raw_delim =
                            ")" + src.substr(i + 1, open - i - 1) +
                            "\"";
                        state = State::RawString;
                        literal.clear();
                        literal_line = line_no;
                        i = open;
                    } else {
                        state = State::String;
                        literal.clear();
                        literal_line = line_no;
                    }
                } else if (c == '\'' && !isIdentChar(prev_code)) {
                    // Skip digit separators (1'000) via the prev
                    // check; otherwise a real char literal.
                    state = State::Char;
                } else {
                    code[i] = c;
                    if (c != ' ' && c != '\t')
                        prev_code = c;
                }
                break;
            case State::BlockComment: {
                size_t close = src.find("*/", i);
                parseAnnotations(
                    path,
                    src.substr(i, close == std::string::npos
                                      ? std::string::npos
                                      : close - i),
                    line_no, out);
                if (close != std::string::npos) {
                    i = close + 1;
                    state = State::Normal;
                } else {
                    i = src.size();
                }
                break;
            }
            case State::String:
                if (c == '\\') {
                    if (i + 1 < src.size())
                        literal.push_back(next);
                    ++i;
                } else if (c == '"') {
                    out.literals.push_back({literal_line, literal});
                    state = State::Normal;
                    prev_code = '"';
                } else {
                    literal.push_back(c);
                }
                break;
            case State::RawString: {
                size_t close = src.find(raw_delim, i);
                if (close != std::string::npos) {
                    literal.append(src, i, close - i);
                    out.literals.push_back({literal_line, literal});
                    i = close + raw_delim.size() - 1;
                    state = State::Normal;
                    prev_code = '"';
                } else {
                    literal.append(src, i, std::string::npos);
                    literal.push_back('\n');
                    i = src.size();
                }
                break;
            }
            case State::Char:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    state = State::Normal;
                    prev_code = '\'';
                }
                break;
            }
        }
        // Unterminated ordinary string at end of line: treat as
        // closed (lint input may be mid-edit; stay line-stable).
        if (state == State::String) {
            out.literals.push_back({literal_line, literal});
            state = State::Normal;
        }
        if (state == State::Char)
            state = State::Normal;
        out.code.push_back(std::move(code));
    }
    return out;
}

std::vector<Token>
tokenize(const Stripped &stripped)
{
    // Multi-char operators to merge, longest first. ">>" is left as
    // two '>' tokens on purpose: nested template closers
    // (map<int, vector<int>>) must count as two closes.
    static const std::vector<std::string> kOps = {
        "...", "->*", "::", "->", "<=", ">=", "==", "!=",
        "&&",  "||",  "<<", "+=", "-=", "*=", "/=", "++",
        "--",
    };

    std::vector<Token> out;
    size_t next_literal = 0;
    for (size_t li = 0; li < stripped.code.size(); ++li) {
        const std::string &line = stripped.code[li];
        const int line_no = static_cast<int>(li) + 1;
        size_t i = 0;
        while (i < line.size()) {
            char c = line[i];
            if (c == ' ' || c == '\t') {
                ++i;
                continue;
            }
            if (c == kLiteralMark) {
                if (next_literal < stripped.literals.size()) {
                    const Literal &lit =
                        stripped.literals[next_literal++];
                    out.push_back({Tok::String, lit.text, lit.line});
                }
                ++i;
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                size_t start = i;
                while (i < line.size() &&
                       (isIdentChar(line[i]) || line[i] == '.' ||
                        line[i] == '\''))
                    ++i;
                out.push_back({Tok::Number,
                               line.substr(start, i - start),
                               line_no});
                continue;
            }
            if (isIdentChar(c)) {
                size_t start = i;
                while (i < line.size() && isIdentChar(line[i]))
                    ++i;
                out.push_back({Tok::Ident,
                               line.substr(start, i - start),
                               line_no});
                continue;
            }
            bool merged = false;
            for (const std::string &op : kOps) {
                if (line.compare(i, op.size(), op) == 0) {
                    out.push_back({Tok::Punct, op, line_no});
                    i += op.size();
                    merged = true;
                    break;
                }
            }
            if (!merged) {
                out.push_back(
                    {Tok::Punct, std::string(1, c), line_no});
                ++i;
            }
        }
    }
    return out;
}

std::vector<IncludeDirective>
scanIncludes(const std::string &content)
{
    std::vector<IncludeDirective> out;
    std::istringstream in(content);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        size_t i = line.find_first_not_of(" \t");
        if (i == std::string::npos || line[i] != '#')
            continue;
        i = line.find_first_not_of(" \t", i + 1);
        if (i == std::string::npos ||
            line.compare(i, 7, "include") != 0)
            continue;
        i = line.find_first_not_of(" \t", i + 7);
        if (i == std::string::npos)
            continue;
        char open = line[i];
        char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
        if (close == '\0')
            continue;
        size_t end = line.find(close, i + 1);
        if (end == std::string::npos)
            continue;
        out.push_back({line_no, line.substr(i + 1, end - i - 1),
                       open == '<'});
    }
    return out;
}

} // namespace v3sim::simlint
