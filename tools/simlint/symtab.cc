#include "symtab.hh"

#include <optional>

namespace v3sim::simlint
{

namespace
{

/** Container template names and whether they are always suspect
 *  (unordered) or only when pointer-keyed (ordered map/set). */
bool
isUnorderedContainer(const std::string &name)
{
    return name == "unordered_map" || name == "unordered_multimap" ||
           name == "unordered_set" || name == "unordered_multiset";
}

bool
isOrderedContainer(const std::string &name)
{
    return name == "map" || name == "multimap" || name == "set" ||
           name == "multiset";
}

/** Index of the '>' matching the '<' at @p open, or npos. */
size_t
matchTemplateClose(const std::vector<Token> &tokens, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].is("<")) {
            ++depth;
        } else if (tokens[i].is(">")) {
            if (--depth == 0)
                return i;
        } else if (tokens[i].is(";") || tokens[i].is("{")) {
            // Not a template argument list after all (stray
            // less-than in an expression).
            return std::string::npos;
        }
    }
    return std::string::npos;
}

/** True when the first template argument after the '<' at @p open
 *  is a pointer type (ends in '*'). */
bool
firstArgIsPointer(const std::vector<Token> &tokens, size_t open)
{
    int depth = 1;
    std::string last;
    for (size_t i = open + 1; i < tokens.size(); ++i) {
        const Token &t = tokens[i];
        if (t.is("<")) {
            ++depth;
        } else if (t.is(">")) {
            if (--depth == 0)
                return last == "*";
        } else if (t.is(",") && depth == 1) {
            return last == "*";
        } else if (t.is(";") || t.is("{")) {
            return false;
        }
        last = t.text;
    }
    return false;
}

/** Classifies the container type starting at token @p i (which must
 *  name a container followed by '<'). Returns nullopt for a
 *  value-keyed ordered container. */
std::optional<ContainerKind>
classifyContainer(const std::vector<Token> &tokens, size_t i)
{
    if (isUnorderedContainer(tokens[i].text))
        return ContainerKind::Unordered;
    if (isOrderedContainer(tokens[i].text) &&
        firstArgIsPointer(tokens, i + 1))
        return ContainerKind::PtrKeyed;
    return std::nullopt;
}

} // namespace

SymbolTable
buildSymbols(const std::vector<Token> &tokens,
             const std::map<std::string, ContainerKind>
                 *global_aliases)
{
    SymbolTable out;

    auto aliasKind =
        [&](const std::string &name) -> std::optional<ContainerKind> {
        auto it = out.aliases.find(name);
        if (it != out.aliases.end())
            return it->second;
        if (global_aliases) {
            auto git = global_aliases->find(name);
            if (git != global_aliases->end())
                return git->second;
        }
        return std::nullopt;
    };

    // ---- Pass A: `using Alias = <container-or-alias>;` ----------
    // Run twice so an alias-of-alias defined later in the TU still
    // resolves.
    for (int round = 0; round < 2; ++round) {
        for (size_t i = 0; i + 3 < tokens.size(); ++i) {
            if (!tokens[i].ident("using") ||
                tokens[i + 1].kind != Tok::Ident ||
                !tokens[i + 2].is("="))
                continue;
            const std::string &alias = tokens[i + 1].text;
            std::optional<ContainerKind> kind;
            for (size_t j = i + 3;
                 j < tokens.size() && !tokens[j].is(";"); ++j) {
                if (tokens[j].kind != Tok::Ident)
                    continue;
                if (j + 1 < tokens.size() &&
                    tokens[j + 1].is("<")) {
                    kind = classifyContainer(tokens, j);
                    if (kind)
                        break;
                    size_t close = matchTemplateClose(tokens, j + 1);
                    if (close == std::string::npos)
                        break;
                    j = close;
                } else if (auto k = aliasKind(tokens[j].text)) {
                    kind = k;
                    break;
                }
            }
            if (kind)
                out.aliases[alias] = *kind;
        }
    }

    // ---- Pass B: variables declared with a container type -------
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident ||
            !(isUnorderedContainer(tokens[i].text) ||
              isOrderedContainer(tokens[i].text)) ||
            !tokens[i + 1].is("<"))
            continue;
        std::optional<ContainerKind> kind =
            classifyContainer(tokens, i);
        if (!kind)
            continue;
        // Skip alias definitions (handled in pass A): a `using X =`
        // introducer earlier in the same statement.
        bool is_alias_def = false;
        for (size_t j = i; j-- > 0;) {
            if (tokens[j].is(";") || tokens[j].is("{") ||
                tokens[j].is("}"))
                break;
            if (tokens[j].ident("using")) {
                is_alias_def = true;
                break;
            }
        }
        if (is_alias_def)
            continue;
        size_t close = matchTemplateClose(tokens, i + 1);
        if (close == std::string::npos)
            continue;
        // Declarator list: `name ;`, `name = ...`, `name{...}`,
        // `name, name2`, or a parameter `name)` — stop on anything
        // else (expression, cast, function return type).
        size_t k = close + 1;
        while (k < tokens.size()) {
            while (k < tokens.size() &&
                   (tokens[k].is("&") || tokens[k].is("*")))
                ++k;
            if (k >= tokens.size() || tokens[k].kind != Tok::Ident)
                break;
            const Token &name = tokens[k];
            const std::string term =
                k + 1 < tokens.size() ? tokens[k + 1].text : "";
            if (term == ";" || term == "=" || term == "," ||
                term == "{" || term == ")") {
                out.tracked.push_back({name.text, name.line, *kind});
            }
            if (term != ",")
                break;
            k += 2;
        }
    }

    // ---- Pass C: variables declared with an alias type ----------
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident)
            continue;
        std::optional<ContainerKind> kind = aliasKind(tokens[i].text);
        if (!kind)
            continue;
        // Not the alias's own definition.
        if (i > 0 && tokens[i - 1].ident("using"))
            continue;
        size_t k = i + 1;
        while (k < tokens.size() && tokens[k].is("&"))
            ++k;
        if (k >= tokens.size() || tokens[k].kind != Tok::Ident)
            continue;
        const std::string term =
            k + 1 < tokens.size() ? tokens[k + 1].text : "";
        if (term == ";" || term == "=" || term == "{" ||
            term == "," || term == ")") {
            out.tracked.push_back(
                {tokens[k].text, tokens[k].line, *kind});
        }
    }

    // ---- Pass D: pointer-typed names (`T *name`) ----------------
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident || !tokens[i + 1].is("*") ||
            tokens[i + 2].kind != Tok::Ident)
            continue;
        const std::string term =
            i + 3 < tokens.size() ? tokens[i + 3].text : ";";
        if (term != ";" && term != "=" && term != "," &&
            term != ")" && term != "{")
            continue;
        // Declaration context only: the type name must open a
        // statement, parameter or member — never follow an
        // expression (a * b).
        if (i > 0) {
            const Token &prev = tokens[i - 1];
            const bool decl_context =
                prev.is(";") || prev.is("{") || prev.is("}") ||
                prev.is("(") || prev.is(",") || prev.is("<") ||
                prev.is("::") || prev.ident("const");
            if (!decl_context)
                continue;
        }
        out.pointer_names.insert(tokens[i + 2].text);
    }

    return out;
}

} // namespace v3sim::simlint
