#include "rules.hh"

#include <algorithm>
#include <cctype>
#include <set>

namespace v3sim::simlint
{

namespace
{

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

/** Context handed to every per-TU rule. */
struct Ctx
{
    const std::string &path;
    const Stripped &stripped;
    const std::vector<Token> &tokens;
    const SymbolTable &symbols;
    std::vector<Finding> &out;

    bool allowed(const char *rule, int line) const
    {
        return stripped.allowed(rule, line);
    }
    void report(int line, const char *rule,
                const std::string &message) const
    {
        if (!allowed(rule, line))
            out.push_back({path, line, rule, message});
    }
};

/** Index of the ')' matching the '(' at @p open, or npos. */
size_t
matchParen(const std::vector<Token> &tokens, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < tokens.size(); ++i) {
        if (tokens[i].is("("))
            ++depth;
        else if (tokens[i].is(")") && --depth == 0)
            return i;
    }
    return std::string::npos;
}

// ---------------------------------------------------------------
// wall-clock / raw-random
// ---------------------------------------------------------------

void
checkWallClock(const Ctx &ctx)
{
    static const std::set<std::string> kWords = {
        "system_clock",     "steady_clock", "high_resolution_clock",
        "gettimeofday",     "clock_gettime", "localtime",
        "gmtime",           "mktime",
    };
    static const std::set<std::string> kCalls = {"time", "clock"};
    const auto &tokens = ctx.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident)
            continue;
        if (kWords.count(tokens[i].text)) {
            ctx.report(tokens[i].line, "wall-clock",
                       "wall-clock source `" + tokens[i].text +
                           "`; simulated time must come from "
                           "sim::EventQueue");
        } else if (kCalls.count(tokens[i].text) &&
                   i + 1 < tokens.size() && tokens[i + 1].is("(")) {
            ctx.report(tokens[i].line, "wall-clock",
                       "wall-clock call `" + tokens[i].text +
                           "()`; simulated time must come from "
                           "sim::EventQueue");
        }
    }
}

void
checkRawRandom(const Ctx &ctx)
{
    // The deterministic engine home may name engines in its own
    // implementation (seeding helpers, docs fixtures).
    if (pathContains(ctx.path, "sim/random."))
        return;
    static const std::set<std::string> kWords = {
        "random_device", "mt19937",  "mt19937_64",
        "minstd_rand",   "drand48",  "lrand48",
        "default_random_engine",
    };
    static const std::set<std::string> kCalls = {"rand", "srand"};
    const auto &tokens = ctx.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident)
            continue;
        if (kWords.count(tokens[i].text)) {
            ctx.report(tokens[i].line, "raw-random",
                       "nondeterministic randomness `" +
                           tokens[i].text +
                           "`; use sim::Rng forks (sim/random.hh)");
        } else if (kCalls.count(tokens[i].text) &&
                   i + 1 < tokens.size() && tokens[i + 1].is("(")) {
            ctx.report(tokens[i].line, "raw-random",
                       "nondeterministic call `" + tokens[i].text +
                           "()`; use sim::Rng forks "
                           "(sim/random.hh)");
        }
    }
}

// ---------------------------------------------------------------
// unordered-iter / ptr-map-iter
// ---------------------------------------------------------------

void
checkIteration(const Ctx &ctx,
               const std::vector<TrackedVar> &tracked)
{
    if (tracked.empty())
        return;
    std::map<std::string, const TrackedVar *> by_name;
    for (const TrackedVar &t : tracked)
        by_name.emplace(t.name, &t);

    auto report = [&](const TrackedVar &t, int line_no,
                      const std::string &how) {
        const char *rule = t.kind == ContainerKind::PtrKeyed
                               ? "ptr-map-iter"
                               : "unordered-iter";
        std::string why =
            t.kind == ContainerKind::PtrKeyed
                ? "pointer-keyed ordered container: iteration "
                  "order follows addresses (ASLR-dependent)"
                : "hash-table iteration order is unspecified";
        ctx.report(line_no, rule,
                   how + " over `" + t.name + "` (declared line " +
                       std::to_string(t.line) + "): " + why +
                       "; use std::map/vector or annotate "
                       "simlint:allow(" +
                       rule + ": <reason>)");
    };

    const auto &tokens = ctx.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident)
            continue;
        auto it = by_name.find(tokens[i].text);
        if (it == by_name.end())
            continue;
        const TrackedVar &t = *it->second;

        // `name.begin()` / cbegin / rbegin: an iterator loop.
        // (`.end()` alone is the find-compare idiom.)
        if (i + 2 < tokens.size() && tokens[i + 1].is(".") &&
            (tokens[i + 2].ident("begin") ||
             tokens[i + 2].ident("cbegin") ||
             tokens[i + 2].ident("rbegin"))) {
            report(t, tokens[i].line, "iterator loop");
            continue;
        }

        // Ranged-for: `for (... : [qualifiers.]name)`. Walk back
        // over member qualification, require a ':' then a `for`
        // within the same header (no statement boundary between).
        size_t j = i;
        while (j >= 2 && (tokens[j - 1].is(".") ||
                          tokens[j - 1].is("->") ||
                          tokens[j - 1].is("::")))
            j -= 2;
        if (j == 0 || !tokens[j - 1].is(":"))
            continue;
        bool in_for = false;
        for (size_t k = j - 1; k-- > 0 && j - 1 - k < 40;) {
            const Token &b = tokens[k];
            if (b.is(";") || b.is("{") || b.is("}") || b.is("?") ||
                b.is("="))
                break;
            if (b.ident("for")) {
                in_for = true;
                break;
            }
        }
        if (in_for)
            report(t, tokens[i].line, "ranged-for");
    }
}

// ---------------------------------------------------------------
// metric-name / metric-handle
// ---------------------------------------------------------------

bool
validMetricSegment(const std::string &seg)
{
    if (seg.empty())
        return false;
    for (char c : seg) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) ||
              c == '_' || c == '#'))
            return false;
    }
    return true;
}

bool
validMetricPath(const std::string &text)
{
    if (text.empty())
        return true; // empty literal: not a path fragment
    size_t start = 0;
    bool first = true;
    while (start <= text.size()) {
        size_t dot = text.find('.', start);
        bool last = dot == std::string::npos;
        std::string seg = text.substr(
            start, last ? std::string::npos : dot - start);
        // Literals are concatenated around prefix variables, so a
        // leading '.' (suffix literal) or trailing '.' (prefix
        // literal) leaves an empty edge segment — fine.
        if (!((first || last) && seg.empty()) &&
            !validMetricSegment(seg))
            return false;
        first = false;
        if (last)
            break;
        start = dot + 1;
    }
    return true;
}

void
checkMetricNames(const Ctx &ctx)
{
    static const std::set<std::string> kCalls = {
        "counter", "sampler", "histogram", "timeWeighted", "gauge",
        "uniquePrefix",
    };
    const auto &tokens = ctx.tokens;
    std::set<int> call_lines;
    for (size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind == Tok::Ident &&
            kCalls.count(tokens[i].text) &&
            (tokens[i - 1].is(".") || tokens[i - 1].is("->")) &&
            tokens[i + 1].is("(") &&
            !ctx.allowed("metric-name", tokens[i].line)) {
            call_lines.insert(tokens[i].line);
        }
    }
    if (call_lines.empty())
        return;
    // Literals on the call line or the two continuation lines
    // (registration statements wrap in this codebase).
    for (const Literal &lit : ctx.stripped.literals) {
        bool near_call = false;
        for (int l : {lit.line, lit.line - 1, lit.line - 2}) {
            if (call_lines.count(l)) {
                near_call = true;
                break;
            }
        }
        if (near_call && !validMetricPath(lit.text)) {
            ctx.report(lit.line, "metric-name",
                       "metric path literal \"" + lit.text +
                           "\" violates the DESIGN.md §6c grammar "
                           "(lowercase [a-z0-9_#] segments joined "
                           "with '.')");
        }
    }
}

/**
 * Flags the lookup-then-record idiom: a registry/string lookup call
 * chained directly into a recording method, e.g.
 * `metrics().counter("x").increment()`. That re-pays the string-map
 * lookup on every event; per-I/O code must resolve a
 * CounterHandle/SamplerHandle once at registration and record
 * through it (sim/metrics.hh). Registration alone — assigning the
 * returned handle — is fine and not matched.
 */
void
checkMetricHandle(const Ctx &ctx)
{
    static const std::set<std::string> kLookups = {
        "counter",       "sampler",
        "histogram",     "timeWeighted",
        "findCounter",   "findSampler",
        "findHistogram", "findTimeWeighted",
    };
    static const std::set<std::string> kRecords = {
        "increment",
        "add",
        "set",
        "adjust",
    };
    const auto &tokens = ctx.tokens;
    for (size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident ||
            !kLookups.count(tokens[i].text))
            continue;
        // Member call only: `x.counter(` / `x->counter(`.
        if (!(tokens[i - 1].is(".") || tokens[i - 1].is("->")))
            continue;
        if (!tokens[i + 1].is("("))
            continue;
        size_t close = matchParen(tokens, i + 1);
        if (close == std::string::npos ||
            close + 2 >= tokens.size())
            continue;
        if (!tokens[close + 1].is("."))
            continue;
        const Token &member = tokens[close + 2];
        if (member.kind != Tok::Ident ||
            !kRecords.count(member.text))
            continue;
        ctx.report(
            tokens[i].line, "metric-handle",
            "metric looked up and recorded in one expression (`." +
                tokens[i].text + "(...)." + member.text +
                "(...)`): the string lookup runs per event; "
                "resolve a handle at registration (sim/metrics.hh) "
                "or annotate simlint:allow(metric-handle: "
                "<reason>)");
    }
}

// ---------------------------------------------------------------
// final-band-key
// ---------------------------------------------------------------

/**
 * Pointers and addresses must never become arbitration or sort
 * keys: address order is ASLR-dependent, the exact §8.3 bug class
 * the tie-shuffle diff kept catching dynamically (pointer-ordered
 * buffer reuse, final-band comparators on buffer addresses). Two
 * shapes are flagged: pointer-to-integer casts (`uintptr_t` /
 * `intptr_t`), and relational compares whose both operands are
 * pointer-typed names from the symbol table.
 */
void
checkFinalBandKey(const Ctx &ctx)
{
    const auto &tokens = ctx.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind == Tok::Ident &&
            (tokens[i].text == "uintptr_t" ||
             tokens[i].text == "intptr_t")) {
            ctx.report(tokens[i].line, "final-band-key",
                       "`" + tokens[i].text +
                           "` turns an address into an integer "
                           "key: ASLR reshuffles it run-to-run; "
                           "arbitrate by content (§8.3) or "
                           "annotate simlint:allow(final-band-key: "
                           "<reason>)");
        }
    }

    const auto &ptrs = ctx.symbols.pointer_names;
    if (ptrs.empty())
        return;
    for (size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (!(tokens[i].is("<") || tokens[i].is(">")))
            continue;
        // Left operand: the identifier just before (a member name
        // after `->`/`.` counts as the operand).
        if (tokens[i - 1].kind != Tok::Ident)
            continue;
        const std::string &left = tokens[i - 1].text;
        // Right operand: `b` or `b->member` / `b.member`.
        if (tokens[i + 1].kind != Tok::Ident)
            continue;
        std::string right = tokens[i + 1].text;
        if (i + 3 < tokens.size() &&
            (tokens[i + 2].is("->") || tokens[i + 2].is(".")) &&
            tokens[i + 3].kind == Tok::Ident)
            right = tokens[i + 3].text;
        if (!ptrs.count(left) || !ptrs.count(right))
            continue;
        ctx.report(tokens[i].line, "final-band-key",
                   "pointer values ordered by address (`" + left +
                       " " + tokens[i].text + " " + right +
                       "`): ASLR-dependent; arbitration and sort "
                       "keys must be content, never addresses "
                       "(§8.3), or annotate "
                       "simlint:allow(final-band-key: <reason>)");
    }
}

// ---------------------------------------------------------------
// ref-capture-escape
// ---------------------------------------------------------------

/**
 * A by-reference lambda capture handed to the event queue or a
 * coroutine spawn outlives its frame: the callback fires ticks
 * later, after the locals it references are gone. Tests are exempt
 * (they drain the queue synchronously inside the capturing frame).
 */
void
checkRefCaptureEscape(const Ctx &ctx)
{
    if (pathContains(ctx.path, "tests/"))
        return;
    static const std::set<std::string> kSinks = {
        "schedule",          "scheduleAt", "scheduleFinal",
        "scheduleCancelable", "spawn",     "EventFn",
    };
    const auto &tokens = ctx.tokens;

    // Reports any top-level by-ref capture in the list opening at
    // @p open ("[&]", "[&x" or "[this, &x").
    auto checkCaptureList = [&](size_t open,
                                const std::string &sink) {
        int depth = 0;
        for (size_t i = open; i < tokens.size(); ++i) {
            if (tokens[i].is("["))
                ++depth;
            else if (tokens[i].is("]") && --depth == 0)
                return;
            if (depth == 1 && tokens[i].is("&") &&
                (tokens[i - 1].is("[") || tokens[i - 1].is(","))) {
                ctx.report(
                    tokens[i].line, "ref-capture-escape",
                    "by-reference lambda capture handed to `" +
                        sink +
                        "`: the callback can outlive the "
                        "enclosing frame; capture by value (or "
                        "[this]) or annotate "
                        "simlint:allow(ref-capture-escape: "
                        "<reason>)");
                return;
            }
        }
    };

    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident ||
            !kSinks.count(tokens[i].text))
            continue;
        // Call form: sink( ... [&] ... ) — every lambda that is a
        // *direct* argument (after the sink's own '(' or a
        // top-level ','). Lambdas nested inside other calls within
        // the argument list belong to those calls, not the sink.
        if (tokens[i + 1].is("(")) {
            size_t close = matchParen(tokens, i + 1);
            if (close == std::string::npos)
                continue;
            int depth = 1;
            for (size_t k = i + 2; k < close; ++k) {
                if (tokens[k].is("("))
                    ++depth;
                else if (tokens[k].is(")"))
                    --depth;
                else if (tokens[k].is("[") && depth == 1 &&
                         (tokens[k - 1].is("(") ||
                          tokens[k - 1].is(",")))
                    checkCaptureList(k, tokens[i].text);
            }
        }
        // Binding form: `EventFn fn = [&] {...}` (also `sink x{[&]`).
        else if (tokens[i + 1].kind == Tok::Ident &&
                 i + 3 < tokens.size() && tokens[i + 2].is("=") &&
                 tokens[i + 3].is("[")) {
            checkCaptureList(i + 3, tokens[i].text);
        }
    }
}

// ---------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------

/**
 * Model code (src/) must derive every random stream from
 * Simulation::forkRng(), the registered fork point — a literal seed
 * buried in a component decouples its stream from the run seed and
 * correlates it with every other copy of the literal. Bench/test
 * harness roots are exempt: there the explicit seed *is* the
 * experiment parameter.
 */
void
checkRngDiscipline(const Ctx &ctx)
{
    for (const char *exempt :
         {"tests/", "bench/", "examples/", "sim/random.",
          "sim/simulation."}) {
        if (pathContains(ctx.path, exempt))
            return;
    }
    const auto &tokens = ctx.tokens;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (!tokens[i].ident("Rng"))
            continue;
        size_t arg = std::string::npos;
        if (tokens[i + 1].is("(") || tokens[i + 1].is("{")) {
            arg = i + 2; // temporary: Rng(123)
        } else if (tokens[i + 1].kind == Tok::Ident &&
                   i + 3 < tokens.size() &&
                   (tokens[i + 2].is("(") || tokens[i + 2].is("{"))) {
            arg = i + 3; // named: Rng rng(123)
        }
        if (arg == std::string::npos || arg >= tokens.size() ||
            tokens[arg].kind != Tok::Number)
            continue;
        ctx.report(tokens[i].line, "rng-discipline",
                   "sim::Rng seeded with a literal in model code: "
                   "streams must derive from Simulation::forkRng() "
                   "(the registered fork point) so one run seed "
                   "governs every stream, or annotate "
                   "simlint:allow(rng-discipline: <reason>)");
    }
}

// ---------------------------------------------------------------
// banned-header
// ---------------------------------------------------------------

void
checkBannedHeaders(const Ctx &ctx,
                   const std::vector<IncludeDirective> &includes)
{
    static const std::set<std::string> kBanned = {
        "chrono",     "thread",      "mutex",
        "shared_mutex", "condition_variable", "random",
        "future",     "semaphore",   "barrier",
        "latch",      "stop_token",  "ctime",
        "time.h",     "sys/time.h",  "pthread.h",
    };
    for (const IncludeDirective &inc : includes) {
        if (!inc.system || !kBanned.count(inc.target))
            continue;
        ctx.report(inc.line, "banned-header",
                   "banned header <" + inc.target +
                       ">: wall-clock, threading and raw-random "
                       "facilities break the determinism contract "
                       "(DESIGN.md §8.1); drop it or annotate "
                       "simlint:allow(banned-header: <reason>)");
    }
}

// ---------------------------------------------------------------
// metric-use collection (pass 1, consumed cross-TU)
// ---------------------------------------------------------------

std::vector<MetricUse>
collectMetricUses(const std::vector<Token> &tokens)
{
    static const std::set<std::string> kRegs = {
        "counter", "sampler", "histogram", "timeWeighted", "gauge",
    };
    static const std::set<std::string> kFinds = {
        "findCounter", "findSampler", "findHistogram",
        "findTimeWeighted",
    };
    std::vector<MetricUse> out;
    for (size_t i = 1; i + 1 < tokens.size(); ++i) {
        if (tokens[i].kind != Tok::Ident)
            continue;
        if (!(tokens[i - 1].is(".") || tokens[i - 1].is("->")))
            continue;
        const std::string &call = tokens[i].text;
        if (!tokens[i + 1].is("(") || i + 3 >= tokens.size())
            continue;

        if (call == "uniquePrefix") {
            // The base is extended at runtime ("client.kdsa" ->
            // "client.kdsa0.ios"), so the base itself is the
            // registered prefix.
            if (tokens[i + 2].kind == Tok::String &&
                tokens[i + 3].is(")")) {
                out.push_back({MetricUse::Kind::RegisterPrefix,
                               tokens[i + 2].text, tokens[i].line,
                               call});
            }
            continue;
        }
        if (kFinds.count(call) ||
            (call == "contains" &&
             tokens[i + 2].kind == Tok::String &&
             tokens[i + 2].text.find('.') != std::string::npos)) {
            if (tokens[i + 2].kind == Tok::String &&
                tokens[i + 3].is(")")) {
                out.push_back({MetricUse::Kind::Lookup,
                               tokens[i + 2].text, tokens[i].line,
                               call});
            }
            continue;
        }
        if (!kRegs.count(call))
            continue;

        // First argument: tokens up to the top-level ',' or ')'.
        size_t end = i + 2;
        int depth = 1;
        bool single_literal =
            tokens[i + 2].kind == Tok::String &&
            (tokens[i + 3].is(")") || tokens[i + 3].is(","));
        std::vector<const Token *> literals;
        for (; end < tokens.size(); ++end) {
            const Token &t = tokens[end];
            if (t.is("("))
                ++depth;
            else if (t.is(")") && --depth == 0)
                break;
            else if (t.is(",") && depth == 1)
                break;
            else if (t.kind == Tok::String)
                literals.push_back(&t);
        }
        if (single_literal) {
            out.push_back({MetricUse::Kind::RegisterPath,
                           tokens[i + 2].text, tokens[i].line,
                           call});
            continue;
        }
        for (const Token *lit : literals) {
            if (lit->text.empty())
                continue;
            MetricUse::Kind kind = MetricUse::Kind::RegisterInfix;
            if (lit->text.front() == '.')
                kind = MetricUse::Kind::RegisterSuffix;
            else if (lit->text.back() == '.')
                kind = MetricUse::Kind::RegisterPrefix;
            out.push_back({kind, lit->text, lit->line, call});
        }
    }
    return out;
}

} // namespace

TuAnalysis
analyzeTu(const std::string &path, const std::string &content)
{
    TuAnalysis tu;
    tu.path = path;
    tu.stripped = strip(path, content);
    tu.tokens = tokenize(tu.stripped);
    tu.symbols = buildSymbols(tu.tokens);
    tu.includes = scanIncludes(content);
    tu.metric_uses = collectMetricUses(tu.tokens);
    return tu;
}

void
runTuRules(TuAnalysis &tu,
           const std::map<std::string, ContainerKind>
               *global_aliases,
           const std::vector<TrackedVar> *extra_tracked)
{
    // Rebuild the symbol table with the repo-wide aliases so
    // alias-typed members declared via another TU's alias resolve.
    SymbolTable symbols = global_aliases
                              ? buildSymbols(tu.tokens,
                                             global_aliases)
                              : tu.symbols;

    std::vector<TrackedVar> tracked = symbols.tracked;
    if (extra_tracked)
        tracked.insert(tracked.end(), extra_tracked->begin(),
                       extra_tracked->end());

    Ctx ctx{tu.path, tu.stripped, tu.tokens, symbols, tu.findings};
    for (const Finding &f : tu.stripped.annotation_findings)
        tu.findings.push_back(f);
    checkWallClock(ctx);
    checkRawRandom(ctx);
    checkIteration(ctx, tracked);
    checkMetricNames(ctx);
    checkMetricHandle(ctx);
    checkFinalBandKey(ctx);
    checkRefCaptureEscape(ctx);
    checkRngDiscipline(ctx);
    checkBannedHeaders(ctx, tu.includes);
}

} // namespace v3sim::simlint
