# Docs-drift guard, run by ctest as `docs_drift_guard`:
#
#   cmake -DREPO_ROOT=<repo> -P tools/docs_drift.cmake
#
# Every bench binary (bench/*.cc) must be mentioned by name in
# EXPERIMENTS.md, so an experiment can't be added (or renamed)
# without its documentation moving with it. Helper translation units
# that are not benches of their own are listed in _helpers below.

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED REPO_ROOT)
    message(FATAL_ERROR "docs_drift: pass -DREPO_ROOT=<repo root>")
endif()

set(_experiments "${REPO_ROOT}/EXPERIMENTS.md")
if(NOT EXISTS "${_experiments}")
    message(FATAL_ERROR "docs_drift: ${_experiments} is missing")
endif()
file(READ "${_experiments}" _doc)

# Bench-directory sources that are shared infrastructure, not
# experiments (no main(), or linked into several benches).
set(_helpers micro_engine)

file(GLOB _benches "${REPO_ROOT}/bench/*.cc")
set(_missing "")
foreach(_src IN LISTS _benches)
    get_filename_component(_name "${_src}" NAME_WE)
    if(_name IN_LIST _helpers)
        continue()
    endif()
    string(FIND "${_doc}" "${_name}" _pos)
    if(_pos EQUAL -1)
        list(APPEND _missing "${_name}")
    endif()
endforeach()

if(_missing)
    list(JOIN _missing ", " _missing_list)
    message(FATAL_ERROR
        "docs_drift: bench(es) not documented in EXPERIMENTS.md: "
        "${_missing_list}. Add an entry for each (name, figure/claim "
        "it reproduces, how to run it).")
endif()

list(LENGTH _benches _count)
message(STATUS
    "docs_drift: all ${_count} bench sources documented in "
    "EXPERIMENTS.md")
