/**
 * @file
 * Failover demo: DSA's retransmission, reconnection and node-crash
 * recovery in action.
 *
 * Section 2.2: DSA adds "flow control, retransmission and
 * reconnection that are critical for industrial-strength systems" on
 * top of VI. This demo runs a stream of I/O while injecting, in
 * escalating order of severity:
 *   1. a burst of dropped packets (request-level retransmission
 *      recovers, with the server's dedup filter keeping writes
 *      exactly-once);
 *   2. a silent connection break, as a NIC or link failure would
 *      cause (the client detects it through retransmission
 *      exhaustion, reconnects a fresh VI, replays every outstanding
 *      request, and the workload continues);
 *   3. a whole-node crash and restart: the server drops its volatile
 *      cache and leaves the fabric, then comes back cold — the
 *      client rides through on the same exhaust-and-reconnect path,
 *      because every committed write is already on disk (section
 *      5.2's commit-before-complete rule).
 *
 *   $ ./examples/failover_demo
 */

#include <cstdio>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"
#include "vi/fault_injector.hh"

using namespace v3sim;

int
main()
{
    sim::Simulation sim(99);
    net::Fabric fabric(sim.queue());
    vi::FaultInjector faults(sim, fabric);
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    vi::ViNic nic(sim, fabric, host.memory(), "db.nic");

    storage::V3ServerConfig server_config;
    server_config.cache_bytes = 32 * util::kMiB;
    storage::V3Server server(sim, fabric, server_config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "v3.d", 4);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks,
                                                64 * util::kKiB);
    server.start();

    dsa::DsaConfig config;
    config.retransmit_timeout = sim::msecs(10);
    config.max_retransmits = 2;
    config.reconnect_delay = sim::msecs(2);
    dsa::DsaClient client(dsa::DsaImpl::Cdsa, host, nic,
                          server.nic().port(), volume, config);

    const sim::Addr buffer = host.memory().allocate(8192);
    int completed = 0, failed = 0;

    // Fault schedule: three acts of increasing severity. The [&]
    // captures are safe here: main() runs the simulation to
    // completion before any of these locals go out of scope.
    // simlint:allow(ref-capture-escape: main drains the queue before locals die)
    sim.queue().schedule(sim::msecs(20), [&] {
        std::printf("[%7.1f ms] FAULT: dropping the next 6 "
                    "packets\n",
                    sim::toMsecs(sim.now()));
        faults.dropNext(6);
    });
    // simlint:allow(ref-capture-escape: main drains the queue before locals die)
    sim.queue().schedule(sim::msecs(60), [&] {
        std::printf("[%7.1f ms] FAULT: silently breaking the VI "
                    "connection\n",
                    sim::toMsecs(sim.now()));
    });
    // Endpoint 0 is the client's first connection.
    faults.scheduleBreak(sim::msecs(60), nic, 0);
    // simlint:allow(ref-capture-escape: main drains the queue before locals die)
    sim.queue().schedule(sim::msecs(100), [&] {
        std::printf("[%7.1f ms] FAULT: crashing the storage node "
                    "(restart at 115 ms)\n",
                    sim::toMsecs(sim.now()));
    });
    faults.scheduleNodeOutage(sim::msecs(100), sim::msecs(115),
                              server);

    sim::spawn([](sim::Simulation &s, dsa::DsaClient &c, sim::Addr buf,
                  int &done, int &bad) -> sim::Task<> {
        if (!co_await c.connect())
            co_return;
        std::printf("[%7.1f ms] connected, starting workload\n",
                    sim::toMsecs(s.now()));
        for (int i = 0; i < 100; ++i) {
            const uint64_t offset =
                static_cast<uint64_t>(i % 32) * 8192;
            const bool write = i % 3 == 0;
            const bool ok =
                write ? co_await c.write(offset, 8192, buf)
                      : co_await c.read(offset, 8192, buf);
            ok ? ++done : ++bad;
            co_await s.sleep(sim::msecs(1));
        }
        std::printf("[%7.1f ms] workload finished\n",
                    sim::toMsecs(s.now()));
    }(sim, client, buffer, completed, failed));

    sim.run();

    std::printf("\nresults:\n");
    std::printf("  I/Os completed        : %d (failed: %d)\n",
                completed, failed);
    std::printf("  retransmissions       : %llu\n",
                static_cast<unsigned long long>(
                    client.retransmitCount()));
    std::printf("  reconnections         : %llu\n",
                static_cast<unsigned long long>(
                    client.reconnectCount()));
    std::printf("  server dedup hits     : %llu (duplicate requests "
                "answered without re-execution)\n",
                static_cast<unsigned long long>(
                    server.retransmitHits()));
    std::printf("  server writes applied : %llu\n",
                static_cast<unsigned long long>(
                    server.writeCount()));
    std::printf("  node crashes/restarts : %llu/%llu\n",
                static_cast<unsigned long long>(server.crashCount()),
                static_cast<unsigned long long>(
                    server.restartCount()));
    const bool survived = completed == 100 && failed == 0 &&
                          client.reconnectCount() >= 2 &&
                          server.crashCount() == 1 &&
                          server.restartCount() == 1;
    std::printf("\n%s\n",
                survived
                    ? "PASS: every I/O completed despite drops, a "
                      "severed connection, and a node crash"
                    : "UNEXPECTED: see counters above");
    return survived ? 0 : 1;
}
