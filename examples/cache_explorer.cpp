/**
 * @file
 * Cache explorer: why V3 uses the Multi-Queue replacement policy.
 *
 * A storage-server cache sits *below* the database's buffer pool, so
 * it sees recency-poor, frequency-meaningful traffic. This example
 * replays three access patterns against LRU and MQ caches of equal
 * size and prints the hit ratios, plus the 15-call cDSA API in use
 * for a scatter/gather round trip.
 *
 *   $ ./examples/cache_explorer
 */

#include <cstdio>

#include "dsa/cdsa_api.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "storage/mq_cache.hh"
#include "storage/v3_server.hh"
#include "util/table.hh"

using namespace v3sim;

namespace
{

/** Touch helper shared by the policy comparison. */
bool
touch(storage::BlockCache &cache, uint64_t block)
{
    const storage::CacheKey key{0, block};
    if (cache.lookupAndPin(key)) {
        cache.unpin(key);
        return true;
    }
    if (cache.insertAndPin(key))
        cache.unpin(key);
    return false;
}

void
comparePolicies()
{
    constexpr uint64_t kCapacity = 512;
    util::TextTable table({"pattern", "LRU hit%", "MQ hit%"});

    struct Pattern
    {
        const char *name;
        // Returns the next block id.
        uint64_t (*next)(sim::Rng &, int);
    };
    const Pattern patterns[] = {
        {"uniform (no skew)",
         [](sim::Rng &rng, int) {
             return rng.uniformInt(0, 8191);
         }},
        {"hot/cold 50/50 over 16x cache",
         [](sim::Rng &rng, int) {
             return rng.bernoulli(0.5)
                        ? rng.uniformInt(0, kCapacity / 2)
                        : kCapacity + rng.uniformInt(0, 8191);
         }},
        {"hot set + periodic scans",
         [](sim::Rng &rng, int i) -> uint64_t {
             if (i % 4096 < 1024) // a scan phase
                 return 100000 +
                        static_cast<uint64_t>(i % 4096);
             return rng.bernoulli(0.7)
                        ? rng.uniformInt(0, kCapacity / 2)
                        : kCapacity + rng.uniformInt(0, 4095);
         }},
    };

    for (const Pattern &pattern : patterns) {
        sim::MemorySpace mem_a, mem_b;
        storage::LruCache lru(mem_a, 8192, kCapacity);
        storage::MqCache mq(mem_b, 8192, kCapacity);
        sim::Rng rng(17);
        for (int i = 0; i < 500000; ++i) {
            const uint64_t block = pattern.next(rng, i);
            touch(lru, block);
            touch(mq, block);
        }
        table.addRow({pattern.name,
                      util::TextTable::num(lru.hitRatio() * 100, 1),
                      util::TextTable::num(mq.hitRatio() * 100, 1)});
    }
    table.print();
}

} // namespace

int
main()
{
    std::printf("Part 1: LRU vs Multi-Queue on second-level access "
                "patterns (512-block caches)\n\n");
    comparePolicies();

    std::printf("\nPart 2: the cDSA 15-call API driving a live V3 "
                "server (MQ cache)\n\n");

    sim::Simulation sim(3);
    net::Fabric fabric(sim.queue());
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    vi::ViNic nic(sim, fabric, host.memory(), "db.nic");

    storage::V3ServerConfig server_config;
    server_config.cache_bytes = 16 * util::kMiB;
    server_config.cache_policy = storage::CachePolicy::Mq;
    storage::V3Server server(sim, fabric, server_config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "v3.d", 2);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks,
                                                64 * util::kKiB);
    server.start();

    sim::spawn([](sim::Simulation &s, osmodel::Node &h,
                  vi::ViNic &n, net::PortId port,
                  uint32_t vol) -> sim::Task<> {
        auto api = co_await dsa::CdsaApi::open(h, n, port, vol);
        if (!api) {
            std::printf("open failed\n");
            co_return;
        }
        const auto info = api->volumeInfo();
        std::printf("open: %s volume, block size %u\n",
                    util::formatSize(info.capacity_bytes).c_str(),
                    info.block_size);

        // Scatter a pattern across three segments, gather it back.
        std::vector<dsa::CdsaSegment> segments;
        for (int i = 0; i < 3; ++i) {
            dsa::CdsaSegment segment;
            segment.offset = static_cast<uint64_t>(i) * 65536;
            segment.len = 8192;
            segment.buffer = h.memory().allocate(8192);
            h.memory().fill(segment.buffer,
                            static_cast<uint8_t>(0xA0 + i), 8192);
            segments.push_back(segment);
        }
        const bool wrote = co_await api->writeScatter(segments);
        std::printf("writeScatter of 3 segments: %s\n",
                    wrote ? "ok" : "FAILED");

        // Async reads polled through the completion flags.
        auto handle =
            api->readAsync(0, 8192, h.memory().allocate(8192));
        int polls = 0;
        while (!api->poll(handle)) {
            ++polls;
            co_await s.sleep(sim::usecs(10));
        }
        std::printf("readAsync completed after %d polls "
                    "(no interrupts: %llu taken)\n",
                    polls,
                    static_cast<unsigned long long>(
                        api->stats().interrupt_completions));

        // Ask the server to prefetch a cold megabyte; the WillNeed
        // hint is acknowledged immediately and the server fetches in
        // the background.
        api->hint(dsa::CdsaHint::WillNeed, 1 << 20, 1 << 20);
        co_await s.sleep(sim::msecs(50)); // let the prefetch land
        const auto stats = api->stats();
        std::printf("stats: %llu I/Os, %llu polled completions\n",
                    static_cast<unsigned long long>(stats.ios),
                    static_cast<unsigned long long>(
                        stats.polled_completions));
        api->close();
    }(sim, host, nic, server.nic().port(), volume));

    sim.run();
    std::printf("\nserver cache after the run: %llu resident "
                "blocks (%llu prefetched via WillNeed), hit ratio "
                "%.0f%%\n",
                static_cast<unsigned long long>(
                    server.cache()->residentBlocks()),
                static_cast<unsigned long long>(
                    server.prefetchedBlocks()),
                server.cacheHitRatio() * 100);
    return 0;
}
