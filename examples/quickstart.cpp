/**
 * @file
 * Quickstart: attach a V3 volume over cDSA and do block I/O.
 *
 * Builds the minimal deployment from the paper — one database host,
 * one V3 storage node with a striped volume, a VI fabric between
 * them — then writes a block, reads it back, verifies the data, and
 * prints the latency plus the host-CPU cost of each operation.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"
#include "util/units.hh"

using namespace v3sim;

int
main()
{
    // 1. One simulation = one experiment. Everything below shares it.
    sim::Simulation sim(/*seed=*/2026);
    net::Fabric fabric(sim.queue());

    // 2. The database host: 4 CPUs, one VI NIC.
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    vi::ViNic nic(sim, fabric, host.memory(), "db.nic");

    // 3. A V3 storage node: 2 CPUs, 64 MB cache, four 10K-RPM SCSI
    //    disks striped into one volume.
    storage::V3ServerConfig server_config;
    server_config.name = "v3";
    server_config.cache_bytes = 64 * util::kMiB;
    storage::V3Server server(sim, fabric, server_config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "v3.d", 4);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks,
                                                64 * util::kKiB);
    server.start();

    // 4. A cDSA connection to that volume.
    dsa::DsaClient client(dsa::DsaImpl::Cdsa, host, nic,
                          server.nic().port(), volume);

    // 5. Application code is a coroutine: connect, write, read.
    const sim::Addr buffer = host.memory().allocate(8192);
    const sim::Addr readback = host.memory().allocate(8192);
    const char message[] = "hello, VI-attached storage!";
    host.memory().write(buffer, message, sizeof(message));

    sim::spawn([](sim::Simulation &s, dsa::DsaClient &c,
                  osmodel::Node &h, sim::Addr wbuf,
                  sim::Addr rbuf) -> sim::Task<> {
        if (!co_await c.connect()) {
            std::printf("connect failed\n");
            co_return;
        }
        std::printf("connected: volume capacity %s, "
                    "%llu request credits granted\n",
                    util::formatSize(c.capacity()).c_str(),
                    static_cast<unsigned long long>(
                        c.config().max_outstanding));

        sim::Tick start = s.now();
        const bool wrote = co_await c.write(0, 8192, wbuf);
        std::printf("write 8K: %s in %s\n",
                    wrote ? "ok (durable on disk)" : "FAILED",
                    util::formatUsecs(s.now() - start).c_str());

        start = s.now();
        const bool read = co_await c.read(0, 8192, rbuf);
        std::printf("read  8K: %s in %s (served from server "
                    "cache)\n",
                    read ? "ok" : "FAILED",
                    util::formatUsecs(s.now() - start).c_str());

        std::printf("host CPU spent so far: %s "
                    "(Kernel %s, DSA %s, VI %s, Lock %s)\n",
                    util::formatUsecs(h.cpus().totalBusyTime())
                        .c_str(),
                    util::formatUsecs(h.cpus().busyTime(
                                          osmodel::CpuCat::Kernel))
                        .c_str(),
                    util::formatUsecs(h.cpus().busyTime(
                                          osmodel::CpuCat::Dsa))
                        .c_str(),
                    util::formatUsecs(h.cpus().busyTime(
                                          osmodel::CpuCat::Vi))
                        .c_str(),
                    util::formatUsecs(h.cpus().busyTime(
                                          osmodel::CpuCat::Lock))
                        .c_str());
    }(sim, client, host, buffer, readback));

    sim.run();

    // 6. Verify the data really made the round trip through the
    //    server cache and disks.
    char out[sizeof(message)] = {};
    host.memory().read(readback, out, sizeof(out));
    if (std::memcmp(out, message, sizeof(message)) == 0)
        std::printf("data integrity verified: \"%s\"\n", out);
    else
        std::printf("DATA MISMATCH\n");

    std::printf("server stats: %llu reads, %llu writes, cache hit "
                "ratio %.0f%%\n",
                static_cast<unsigned long long>(server.readCount()),
                static_cast<unsigned long long>(server.writeCount()),
                server.cacheHitRatio() * 100);
    return 0;
}
