/**
 * @file
 * OLTP demo: a small TPC-C-shaped run over every storage backend.
 *
 * A scaled-down version of the paper's section 6 experiment: the
 * same database engine and workload driven through Local/kDSA/wDSA/
 * cDSA attachments, printing transaction rate, CPU utilization and
 * its breakdown. Runs in a few seconds.
 *
 *   $ ./examples/oltp_demo
 */

#include <cstdio>

#include "scenarios/tpcc_run.hh"
#include "util/table.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

int
main()
{
    std::printf("Mini TPC-C across storage backends "
                "(mid-size platform, short window)\n\n");

    util::TextTable table({"backend", "tpmC", "vs local", "cpu%",
                           "SQL%", "Kernel%", "Lock%", "DSA%",
                           "hit%"});
    double local_tpmc = 0;
    for (const Backend backend : {Backend::Local, Backend::Kdsa,
                                  Backend::Wdsa, Backend::Cdsa}) {
        TpccRunConfig config;
        config.platform = Platform::MidSize;
        config.backend = backend;
        config.warmup = sim::msecs(200);
        config.window = sim::msecs(600);
        const TpccRunResult r = runTpcc(config);
        if (backend == Backend::Local)
            local_tpmc = r.oltp.tpmc;

        auto share = [&](osmodel::CpuCat cat) {
            return r.oltp.cpu_breakdown[static_cast<size_t>(cat)] /
                   std::max(r.oltp.cpu_utilization, 1e-9) * 100;
        };
        char rel[16];
        std::snprintf(rel, sizeof(rel), "%+.1f%%",
                      (r.oltp.tpmc / local_tpmc - 1) * 100);
        table.addRow({backendName(backend),
                      util::TextTable::num(r.oltp.tpmc, 0), rel,
                      util::TextTable::num(
                          r.oltp.cpu_utilization * 100, 1),
                      util::TextTable::num(
                          share(osmodel::CpuCat::Sql), 1),
                      util::TextTable::num(
                          share(osmodel::CpuCat::Kernel), 1),
                      util::TextTable::num(
                          share(osmodel::CpuCat::Lock), 1),
                      util::TextTable::num(
                          share(osmodel::CpuCat::Dsa), 1),
                      util::TextTable::num(
                          r.server_cache_hit * 100, 1)});
    }
    table.print();

    std::printf(
        "\nWhat to look for (the paper's findings, section 6):\n"
        "  - kDSA lands near the local baseline;\n"
        "  - cDSA wins by spending less CPU per I/O (polled\n"
        "    completions, no kernel on the I/O path);\n"
        "  - wDSA pays for Win32 completion semantics;\n"
        "  - the V3 cache absorbs 40-45%% of reads with a third of\n"
        "    the local configuration's disks.\n");
    return 0;
}
