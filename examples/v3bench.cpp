/**
 * @file
 * v3bench — a command-line workbench over the library.
 *
 * Measure any point in the paper's design space without writing
 * code:
 *
 *   # cached 8K reads over cDSA, 4 outstanding
 *   ./examples/v3bench --backend cdsa --size 8K --outstanding 4
 *
 *   # uncached random writes vs the local baseline
 *   ./examples/v3bench --backend local --write --uncached --size 32K
 *
 *   # a quick TPC-C run on the mid-size platform
 *   ./examples/v3bench --tpcc mid --backend kdsa
 *
 * Options:
 *   --backend local|kdsa|wdsa|cdsa   storage attachment (default cdsa)
 *   --size <bytes|8K|64K...>         request size (default 8K)
 *   --outstanding <n>                concurrent requests (default 1)
 *   --write                          writes instead of reads
 *   --uncached                       server cache off, random I/O
 *   --disks <n>                      spindles behind the target
 *   --window <ms>                    measurement window (default 300)
 *   --seed <n>                       simulation seed (default 42)
 *   --tpcc mid|large                 run TPC-C instead of micro I/O
 *   --no-opts                        disable the section-3
 *                                    optimizations
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenarios/microbench.hh"
#include "scenarios/tpcc_run.hh"
#include "util/units.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

struct Options
{
    Backend backend = Backend::Cdsa;
    uint64_t size = 8192;
    int outstanding = 1;
    bool is_write = false;
    bool cached = true;
    int disks = 8;
    int window_ms = 300;
    uint64_t seed = 42;
    bool tpcc = false;
    Platform platform = Platform::MidSize;
    bool opts_on = true;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--backend local|kdsa|wdsa|cdsa] "
                 "[--size N] [--outstanding N] [--write] "
                 "[--uncached] [--disks N] [--window ms] [--seed N] "
                 "[--tpcc mid|large] [--no-opts]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options options;
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--backend") {
            const std::string value = need_value(i);
            if (value == "local")
                options.backend = Backend::Local;
            else if (value == "kdsa")
                options.backend = Backend::Kdsa;
            else if (value == "wdsa")
                options.backend = Backend::Wdsa;
            else if (value == "cdsa")
                options.backend = Backend::Cdsa;
            else
                usage(argv[0]);
        } else if (arg == "--size") {
            const auto parsed = util::parseSize(need_value(i));
            if (!parsed)
                usage(argv[0]);
            options.size = *parsed;
        } else if (arg == "--outstanding") {
            options.outstanding = std::atoi(need_value(i));
        } else if (arg == "--write") {
            options.is_write = true;
        } else if (arg == "--uncached") {
            options.cached = false;
        } else if (arg == "--disks") {
            options.disks = std::atoi(need_value(i));
        } else if (arg == "--window") {
            options.window_ms = std::atoi(need_value(i));
        } else if (arg == "--seed") {
            options.seed =
                static_cast<uint64_t>(std::atoll(need_value(i)));
        } else if (arg == "--tpcc") {
            options.tpcc = true;
            const std::string value = need_value(i);
            if (value == "mid")
                options.platform = Platform::MidSize;
            else if (value == "large")
                options.platform = Platform::Large;
            else
                usage(argv[0]);
        } else if (arg == "--no-opts") {
            options.opts_on = false;
        } else {
            usage(argv[0]);
        }
    }
    return options;
}

int
runTpccMode(const Options &options)
{
    TpccRunConfig config;
    config.platform = options.platform;
    config.backend = options.backend;
    config.seed = options.seed;
    config.window = sim::msecs(options.window_ms > 300
                                   ? options.window_ms
                                   : 800);
    if (!options.opts_on)
        config.opts = dsa::DsaOptimizations::none();

    std::printf("TPC-C %s, %s, optimizations %s ...\n",
                options.platform == Platform::Large ? "large"
                                                    : "mid-size",
                backendName(options.backend),
                options.opts_on ? "on" : "off");
    const TpccRunResult result = runTpcc(config);
    std::printf("  tpmC            : %.0f\n", result.oltp.tpmc);
    std::printf("  total txn/min   : %.0f\n", result.oltp.total_tpm);
    std::printf("  IOPS            : %.0f\n",
                result.oltp.io_per_second);
    std::printf("  CPU utilization : %.1f%%\n",
                result.oltp.cpu_utilization * 100);
    std::printf("  cache hit ratio : %.1f%%\n",
                result.server_cache_hit * 100);
    std::printf("  disk utilization: %.1f%%\n",
                result.disk_utilization * 100);
    std::printf("  breakdown       :");
    for (size_t c = 0; c < osmodel::kCpuCatCount; ++c) {
        std::printf(" %s %.1f%%",
                    osmodel::cpuCatName(
                        static_cast<osmodel::CpuCat>(c)),
                    result.oltp.cpu_breakdown[c] /
                        std::max(result.oltp.cpu_utilization, 1e-9) *
                        100);
    }
    std::printf("\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);
    if (options.tpcc)
        return runTpccMode(options);

    MicroRig::Config config;
    config.backend = options.backend;
    config.disks = options.disks;
    config.seed = options.seed;
    if (!options.cached)
        config.cache_bytes = 0;
    if (!options.opts_on)
        config.dsa.opts = dsa::DsaOptimizations::none();

    MicroRig rig(config);
    if (!rig.ready()) {
        std::fprintf(stderr, "failed to connect to the V3 server\n");
        return 1;
    }

    std::printf("%s %s %s, %s, %d outstanding, %d disks\n",
                backendName(options.backend),
                options.cached ? "cached" : "uncached random",
                options.is_write ? "writes" : "reads",
                util::formatSize(options.size).c_str(),
                options.outstanding, options.disks);

    if (options.outstanding <= 1) {
        const auto r = rig.measureLatency(options.size,
                                          !options.is_write, 200,
                                          options.cached);
        std::printf("  mean latency : %.3f ms\n", r.mean_us / 1e3);
        std::printf("  host CPU/IO  : %.1f us\n", r.cpu_overhead_us);
        if (r.server_us > 0)
            std::printf("  server time  : %.1f us\n", r.server_us);
    }
    const auto t = rig.measureThroughput(
        options.size, !options.is_write, options.outstanding,
        sim::msecs(options.window_ms), options.cached);
    std::printf("  throughput   : %.1f MB/s (%.0f IOPS)\n", t.mbps,
                t.iops);
    std::printf("  response     : %.3f ms\n",
                t.mean_response_us / 1e3);
    return 0;
}
