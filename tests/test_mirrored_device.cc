/**
 * @file
 * Tests for dsa::MirroredDevice: write duplication, round-robin
 * reads, failover on node crash, background resync, readmission,
 * and end-to-end data correctness of a resynced replica.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenarios/testbed.hh"
#include "util/crc32c.hh"

namespace v3sim::dsa
{
namespace
{

using scenarios::Backend;
using scenarios::HostParams;
using scenarios::StorageParams;
using scenarios::Testbed;
using sim::Addr;
using sim::Task;

constexpr uint64_t kIo = 8192;

/** A mirrored 2-node testbed with failure detection fast enough
 *  that a client declares its node dead well inside the scripted
 *  outage windows the tests use. */
class MirroredDeviceTest : public ::testing::Test
{
  protected:
    MirroredDeviceTest()
    {
        dsa::DsaConfig dsa_config;
        dsa_config.retransmit_timeout = sim::msecs(12);
        dsa_config.max_retransmits = 1;
        dsa_config.reconnect_delay = sim::msecs(1);
        dsa_config.max_reconnect_attempts = 2;
        dsa_config.connect_timeout = sim::msecs(3);

        StorageParams storage_params;
        storage_params.v3_nodes = 2;
        storage_params.disks_per_node = 2;
        storage_params.cache_bytes_per_node = 4 * util::kMiB;
        storage_params.mirrored = true;
        storage_params.mirror.probe_interval = sim::msecs(2);

        bed_ = std::make_unique<Testbed>(
            Backend::Cdsa, HostParams::midSize(), storage_params,
            dsa_config, /*seed=*/11);
        EXPECT_TRUE(bed_->connectAll());
        buffer_ = bed_->host().memory().allocate(kIo);
    }

    MirroredDevice &mirror() { return *bed_->mirrors().front(); }

    storage::V3Server &server(size_t n)
    {
        return *bed_->servers()[n];
    }

    /** Runs @p count sequential I/Os (every third a write); returns
     *  how many succeeded. Bounded with runUntil rather than run():
     *  a down replica's resync task probes it forever, so the event
     *  queue never empties while a node stays crashed. */
    int
    runIos(int count, sim::Tick bound = sim::msecs(2000))
    {
        int succeeded = 0;
        sim::spawn([](sim::Simulation &s, BlockDevice &device,
                      Addr buf, int n, int &out) -> Task<> {
            for (int i = 0; i < n; ++i) {
                const uint64_t offset =
                    static_cast<uint64_t>(i % 16) * kIo;
                const bool ok =
                    i % 3 == 0
                        ? co_await device.write(offset, kIo, buf)
                        : co_await device.read(offset, kIo, buf);
                if (ok)
                    ++out;
                co_await s.sleep(sim::usecs(500));
            }
        }(bed_->sim(), bed_->device(), buffer_, count, succeeded));
        bed_->sim().runUntil(bed_->sim().now() + bound);
        return succeeded;
    }

    /** One I/O through the mirror; returns its status. */
    bool
    oneIo(bool write, uint64_t offset, Addr buf)
    {
        bool ok = false;
        sim::spawn([](BlockDevice &device, bool w, uint64_t off,
                      Addr b, bool &out) -> Task<> {
            out = w ? co_await device.write(off, kIo, b)
                    : co_await device.read(off, kIo, b);
        }(bed_->device(), write, offset, buf, ok));
        bed_->sim().runUntil(bed_->sim().now() + sim::msecs(200));
        return ok;
    }

    Addr
    patternBuffer(uint8_t salt)
    {
        const Addr buffer = bed_->host().memory().allocate(kIo);
        std::vector<uint8_t> data(kIo);
        for (uint64_t i = 0; i < kIo; ++i)
            data[i] = static_cast<uint8_t>((i * 7 + salt) & 0xFF);
        bed_->host().memory().write(buffer, data.data(), kIo);
        return buffer;
    }

    bool
    checkPattern(Addr buffer, uint8_t salt)
    {
        std::vector<uint8_t> data(kIo);
        bed_->host().memory().read(buffer, data.data(), kIo);
        for (uint64_t i = 0; i < kIo; ++i) {
            if (data[i] !=
                static_cast<uint8_t>((i * 7 + salt) & 0xFF)) {
                return false;
            }
        }
        return true;
    }

    std::unique_ptr<Testbed> bed_;
    Addr buffer_ = sim::kNullAddr;
};

TEST_F(MirroredDeviceTest, WritesDuplicateAndReadsRoundRobin)
{
    EXPECT_EQ(runIos(30), 30);

    // 10 of the 30 I/Os are writes: every replica applied each one.
    EXPECT_EQ(server(0).writeCount(), 10u);
    EXPECT_EQ(server(1).writeCount(), 10u);

    // The 20 reads round-robin across both replicas.
    EXPECT_EQ(server(0).readCount() + server(1).readCount(), 20u);
    EXPECT_GT(server(0).readCount(), 0u);
    EXPECT_GT(server(1).readCount(), 0u);

    EXPECT_EQ(mirror().activeReplicas(), 2u);
    EXPECT_FALSE(mirror().degraded());
    EXPECT_EQ(mirror().failoverCount(), 0u);
}

TEST_F(MirroredDeviceTest, NodeCrashFailoverResyncReadmit)
{
    // Crash node 0 shortly into the workload, restart it while the
    // workload is still running. Client-side death takes at most
    // ~12*2 (retransmit exhaustion) + 2*(3+1) ms (reconnect
    // attempts), well inside the 60 ms outage.
    bed_->faults().scheduleNodeOutage(
        bed_->sim().now() + sim::msecs(5),
        bed_->sim().now() + sim::msecs(65), server(0));

    // ~150 ms of I/O: outage, degraded operation, resync, readmit.
    EXPECT_EQ(runIos(100), 100);

    EXPECT_EQ(server(0).crashCount(), 1u);
    EXPECT_EQ(server(0).restartCount(), 1u);
    EXPECT_GE(mirror().failoverCount(), 1u);
    EXPECT_EQ(mirror().readmitCount(), 1u);
    EXPECT_EQ(mirror().activeReplicas(), 2u);
    EXPECT_FALSE(mirror().degraded());
    EXPECT_EQ(mirror().dirtyBytes(), 0u);
    EXPECT_GT(mirror().resyncBytes(), 0u);
}

TEST_F(MirroredDeviceTest, ResyncedReplicaServesLatestData)
{
    // Seed every block with pattern A, mirrored to both nodes.
    const Addr buf_a = patternBuffer(1);
    for (uint64_t b = 0; b < 8; ++b)
        EXPECT_TRUE(oneIo(true, b * kIo, buf_a));

    // Crash node 0 and let its client die (a read cycles through it).
    server(0).crash();
    EXPECT_EQ(runIos(12), 12);
    ASSERT_TRUE(mirror().degraded());

    // Overwrite half the blocks with pattern B while degraded: only
    // the survivor sees these, the mirror logs them dirty.
    const Addr buf_b = patternBuffer(2);
    for (uint64_t b = 0; b < 4; ++b)
        EXPECT_TRUE(oneIo(true, b * kIo, buf_b));
    EXPECT_GT(mirror().dirtyBytes(), 0u);

    // Restart; background resync replays the missed writes and
    // readmits the node. Idle time only — no foreground I/O.
    server(0).restart();
    bed_->sim().runUntil(bed_->sim().now() + sim::msecs(200));
    ASSERT_EQ(mirror().readmitCount(), 1u);
    ASSERT_EQ(mirror().dirtyBytes(), 0u);

    // Kill the survivor: reads can now only come from the resynced
    // node 1... which must serve pattern B, not the stale pattern A.
    server(1).crash();
    const Addr rbuf = bed_->host().memory().allocate(kIo);
    for (uint64_t b = 0; b < 4; ++b) {
        ASSERT_TRUE(oneIo(false, b * kIo, rbuf));
        EXPECT_TRUE(checkPattern(rbuf, 2)) << "stale block " << b;
    }
    for (uint64_t b = 4; b < 8; ++b) {
        ASSERT_TRUE(oneIo(false, b * kIo, rbuf));
        EXPECT_TRUE(checkPattern(rbuf, 1)) << "stale block " << b;
    }
}

/**
 * Double fault: the healthy leg crashes while it is the resync
 * source for the other leg, with a write still in flight — so *both*
 * legs end up failed with non-empty dirty logs. Without the
 * fallback-source rule in resyncTask this wedges permanently (each
 * leg waits for an *active* source that can only appear when the
 * other readmits); with it, the earlier-failed leg drains from the
 * later-failed one, readmits, and the mirror heals. The whole
 * scenario is driven at fixed step sizes and fingerprinted so it can
 * be checked for tie-shuffle invariance (DESIGN.md §8).
 */
struct DoubleFaultOutcome
{
    bool connect_ok = false;
    bool degraded_after_crash0 = false;
    bool mid_resync_at_crash1 = false;
    bool w_ok = true;
    uint64_t leg1_dirty_after_w = 0;
    uint64_t failovers = 0;
    uint64_t readmits = 0;
    size_t active_end = 0;
    uint64_t dirty_end = 0;
    uint64_t resync_bytes = 0;
    int stale_blocks_leg0 = -1;
    uint32_t metrics_crc = 0;
};

DoubleFaultOutcome
runDoubleFault(uint64_t tie_seed)
{
    constexpr uint64_t kBlocks = 256;    // pattern-B range, 2 MiB
    constexpr uint64_t kSeedBase = 256;  // pattern-A range start
    constexpr uint64_t kStray = 512;     // the in-flight write W

    DoubleFaultOutcome out;

    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(12);
    dsa_config.max_retransmits = 1;
    dsa_config.reconnect_delay = sim::msecs(1);
    dsa_config.max_reconnect_attempts = 2;
    dsa_config.connect_timeout = sim::msecs(3);

    StorageParams storage_params;
    storage_params.v3_nodes = 2;
    storage_params.disks_per_node = 2;
    storage_params.cache_bytes_per_node = 4 * util::kMiB;
    storage_params.mirrored = true;
    storage_params.mirror.probe_interval = sim::msecs(2);

    Testbed bed(Backend::Cdsa, HostParams::midSize(),
                storage_params, dsa_config, /*seed=*/11);
    bed.sim().queue().setTieShuffle(tie_seed);
    out.connect_ok = bed.connectAll();
    if (!out.connect_ok)
        return out;
    sim::Simulation &sim = bed.sim();
    MirroredDevice &mirror = *bed.mirrors().front();

    const auto pattern = [&bed](uint8_t salt) {
        const Addr buffer = bed.host().memory().allocate(kIo);
        std::vector<uint8_t> data(kIo);
        for (uint64_t i = 0; i < kIo; ++i)
            data[i] = static_cast<uint8_t>((i * 7 + salt) & 0xFF);
        bed.host().memory().write(buffer, data.data(), kIo);
        return buffer;
    };
    // Sequential block I/Os; returns how many succeeded.
    const auto runBlocks = [&bed](bool write, uint64_t first,
                                  uint64_t count, Addr buf,
                                  sim::Tick bound) {
        int succeeded = 0;
        sim::spawn([](BlockDevice &device, bool w, uint64_t from,
                      uint64_t n, Addr b, int &ok) -> Task<> {
            for (uint64_t i = 0; i < n; ++i) {
                const uint64_t off = (from + i) * kIo;
                const bool good =
                    w ? co_await device.write(off, kIo, b)
                      : co_await device.read(off, kIo, b);
                if (good)
                    ++ok;
            }
        }(bed.device(), write, first, count, buf, succeeded));
        bed.sim().runUntil(bed.sim().now() + bound);
        return succeeded;
    };

    const Addr buf_a = pattern(1);
    const Addr buf_b = pattern(2);
    const Addr buf_c = pattern(3);
    const Addr scratch = bed.host().memory().allocate(kIo);

    // Healthy seeding: pattern A on [kSeedBase, kSeedBase+kBlocks).
    if (runBlocks(true, kSeedBase, kBlocks, buf_a,
                  sim::msecs(400)) != static_cast<int>(kBlocks)) {
        return out;
    }

    // Crash node 0; churn reads until its client dies and the mirror
    // fails the leg over.
    bed.servers()[0]->crash();
    runBlocks(false, 600, 8, scratch, sim::msecs(300));
    out.degraded_after_crash0 =
        mirror.degraded() && !mirror.legActive(0);
    if (!out.degraded_after_crash0)
        return out;

    // Degraded writes: pattern B on [0, kBlocks) lands only on leg 1
    // and fills leg 0's dirty log (2 MiB — several resync batches).
    if (runBlocks(true, 0, kBlocks, buf_b, sim::msecs(400)) !=
        static_cast<int>(kBlocks)) {
        return out;
    }

    // Restart node 0 and step until its resync enters catch-up (the
    // revive probe backs off, so the instant isn't fixed — but it is
    // deterministic, so stepping to the condition keeps both runs of
    // a determinism pair aligned).
    bed.servers()[0]->restart();
    for (int guard = 0; guard < 400 && !mirror.legCatchingUp(0);
         ++guard) {
        sim.runUntil(sim.now() + sim::usecs(500));
    }
    out.mid_resync_at_crash1 =
        mirror.legCatchingUp(0) && mirror.dirtyBytes() > 0;

    // Put a write in flight (it will be reported failed: leg 1 dies
    // under it, and leg 0 is only catching up) and crash the resync
    // source mid-replay.
    bool w_ok = true;
    sim::spawn([](BlockDevice &device, Addr b, bool &ok) -> Task<> {
        ok = co_await device.write(kStray * kIo, kIo, b);
    }(bed.device(), buf_c, w_ok));
    sim.runUntil(sim.now() + sim::usecs(50));
    bed.servers()[1]->crash();

    // Let the crash propagate: W fails, the replay reads fail, leg 1
    // fails over with W's region dirty. Both legs are now down.
    sim.runUntil(sim.now() + sim::msecs(60));
    out.w_ok = w_ok;
    out.leg1_dirty_after_w = mirror.legDirtyBytes(1);

    // Restart node 1: leg 0 drains from the later-failed leg 1 (the
    // fallback source), readmits, then serves as the active source
    // for leg 1's own residue.
    bed.servers()[1]->restart();
    sim.runUntil(sim.now() + sim::msecs(500));

    out.failovers = mirror.failoverCount();
    out.readmits = mirror.readmitCount();
    out.active_end = mirror.activeReplicas();
    out.dirty_end = mirror.dirtyBytes();
    out.resync_bytes = mirror.resyncBytes();

    // No write lost: leg 0 alone must serve pattern B on [0, kBlocks)
    // and pattern A on the seeded range. (W is excluded: it was
    // *reported failed*, so either content is within contract.)
    bed.servers()[1]->crash();
    runBlocks(false, 600, 4, scratch, sim::msecs(300));
    const auto checkRange = [&](uint64_t first, uint64_t count,
                                uint8_t salt) {
        int stale = 0;
        for (uint64_t b = 0; b < count; ++b) {
            if (runBlocks(false, first + b, 1, scratch,
                          sim::msecs(20)) != 1) {
                ++stale;
                continue;
            }
            std::vector<uint8_t> data(kIo);
            bed.host().memory().read(scratch, data.data(), kIo);
            for (uint64_t i = 0; i < kIo; ++i) {
                if (data[i] != static_cast<uint8_t>(
                                   (i * 7 + salt) & 0xFF)) {
                    ++stale;
                    break;
                }
            }
        }
        return stale;
    };
    out.stale_blocks_leg0 = checkRange(0, kBlocks, 2) +
                            checkRange(kSeedBase, kBlocks, 1);

    const std::string metrics = sim.metrics().toJson();
    out.metrics_crc = util::crc32c(metrics.data(), metrics.size());
    return out;
}

TEST(MirroredDeviceDoubleFault, SourceCrashMidResyncConverges)
{
    const DoubleFaultOutcome out = runDoubleFault(1);
    ASSERT_TRUE(out.connect_ok);
    ASSERT_TRUE(out.degraded_after_crash0);
    // Scenario validity: the second crash really hit mid-resync and
    // left the later-failed leg with a dirty log of its own.
    EXPECT_TRUE(out.mid_resync_at_crash1);
    EXPECT_FALSE(out.w_ok);
    EXPECT_GT(out.leg1_dirty_after_w, 0u);
    // Both legs failed over once and both came back.
    EXPECT_EQ(out.failovers, 2u);
    EXPECT_EQ(out.readmits, 2u);
    EXPECT_EQ(out.active_end, 2u);
    EXPECT_EQ(out.dirty_end, 0u);
    EXPECT_GT(out.resync_bytes, 0u);
    // No committed write lost on the leg rebuilt via the fallback.
    EXPECT_EQ(out.stale_blocks_leg0, 0);
}

TEST(MirroredDeviceDoubleFault, DeterministicUnderTieShuffle)
{
    const DoubleFaultOutcome a = runDoubleFault(1);
    const DoubleFaultOutcome b = runDoubleFault(20020817);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.readmits, b.readmits);
    EXPECT_EQ(a.resync_bytes, b.resync_bytes);
    EXPECT_EQ(a.dirty_end, b.dirty_end);
    EXPECT_EQ(a.stale_blocks_leg0, b.stale_blocks_leg0);
    EXPECT_EQ(a.metrics_crc, b.metrics_crc);
}

} // namespace
} // namespace v3sim::dsa
