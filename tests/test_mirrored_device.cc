/**
 * @file
 * Tests for dsa::MirroredDevice: write duplication, round-robin
 * reads, failover on node crash, background resync, readmission,
 * and end-to-end data correctness of a resynced replica.
 */

#include <gtest/gtest.h>

#include <vector>

#include "scenarios/testbed.hh"

namespace v3sim::dsa
{
namespace
{

using scenarios::Backend;
using scenarios::HostParams;
using scenarios::StorageParams;
using scenarios::Testbed;
using sim::Addr;
using sim::Task;

constexpr uint64_t kIo = 8192;

/** A mirrored 2-node testbed with failure detection fast enough
 *  that a client declares its node dead well inside the scripted
 *  outage windows the tests use. */
class MirroredDeviceTest : public ::testing::Test
{
  protected:
    MirroredDeviceTest()
    {
        dsa::DsaConfig dsa_config;
        dsa_config.retransmit_timeout = sim::msecs(12);
        dsa_config.max_retransmits = 1;
        dsa_config.reconnect_delay = sim::msecs(1);
        dsa_config.max_reconnect_attempts = 2;
        dsa_config.connect_timeout = sim::msecs(3);

        StorageParams storage_params;
        storage_params.v3_nodes = 2;
        storage_params.disks_per_node = 2;
        storage_params.cache_bytes_per_node = 4 * util::kMiB;
        storage_params.mirrored = true;
        storage_params.mirror.probe_interval = sim::msecs(2);

        bed_ = std::make_unique<Testbed>(
            Backend::Cdsa, HostParams::midSize(), storage_params,
            dsa_config, /*seed=*/11);
        EXPECT_TRUE(bed_->connectAll());
        buffer_ = bed_->host().memory().allocate(kIo);
    }

    MirroredDevice &mirror() { return *bed_->mirrors().front(); }

    storage::V3Server &server(size_t n)
    {
        return *bed_->servers()[n];
    }

    /** Runs @p count sequential I/Os (every third a write); returns
     *  how many succeeded. Bounded with runUntil rather than run():
     *  a down replica's resync task probes it forever, so the event
     *  queue never empties while a node stays crashed. */
    int
    runIos(int count, sim::Tick bound = sim::msecs(2000))
    {
        int succeeded = 0;
        sim::spawn([](sim::Simulation &s, BlockDevice &device,
                      Addr buf, int n, int &out) -> Task<> {
            for (int i = 0; i < n; ++i) {
                const uint64_t offset =
                    static_cast<uint64_t>(i % 16) * kIo;
                const bool ok =
                    i % 3 == 0
                        ? co_await device.write(offset, kIo, buf)
                        : co_await device.read(offset, kIo, buf);
                if (ok)
                    ++out;
                co_await s.sleep(sim::usecs(500));
            }
        }(bed_->sim(), bed_->device(), buffer_, count, succeeded));
        bed_->sim().runUntil(bed_->sim().now() + bound);
        return succeeded;
    }

    /** One I/O through the mirror; returns its status. */
    bool
    oneIo(bool write, uint64_t offset, Addr buf)
    {
        bool ok = false;
        sim::spawn([](BlockDevice &device, bool w, uint64_t off,
                      Addr b, bool &out) -> Task<> {
            out = w ? co_await device.write(off, kIo, b)
                    : co_await device.read(off, kIo, b);
        }(bed_->device(), write, offset, buf, ok));
        bed_->sim().runUntil(bed_->sim().now() + sim::msecs(200));
        return ok;
    }

    Addr
    patternBuffer(uint8_t salt)
    {
        const Addr buffer = bed_->host().memory().allocate(kIo);
        std::vector<uint8_t> data(kIo);
        for (uint64_t i = 0; i < kIo; ++i)
            data[i] = static_cast<uint8_t>((i * 7 + salt) & 0xFF);
        bed_->host().memory().write(buffer, data.data(), kIo);
        return buffer;
    }

    bool
    checkPattern(Addr buffer, uint8_t salt)
    {
        std::vector<uint8_t> data(kIo);
        bed_->host().memory().read(buffer, data.data(), kIo);
        for (uint64_t i = 0; i < kIo; ++i) {
            if (data[i] !=
                static_cast<uint8_t>((i * 7 + salt) & 0xFF)) {
                return false;
            }
        }
        return true;
    }

    std::unique_ptr<Testbed> bed_;
    Addr buffer_ = sim::kNullAddr;
};

TEST_F(MirroredDeviceTest, WritesDuplicateAndReadsRoundRobin)
{
    EXPECT_EQ(runIos(30), 30);

    // 10 of the 30 I/Os are writes: every replica applied each one.
    EXPECT_EQ(server(0).writeCount(), 10u);
    EXPECT_EQ(server(1).writeCount(), 10u);

    // The 20 reads round-robin across both replicas.
    EXPECT_EQ(server(0).readCount() + server(1).readCount(), 20u);
    EXPECT_GT(server(0).readCount(), 0u);
    EXPECT_GT(server(1).readCount(), 0u);

    EXPECT_EQ(mirror().activeReplicas(), 2u);
    EXPECT_FALSE(mirror().degraded());
    EXPECT_EQ(mirror().failoverCount(), 0u);
}

TEST_F(MirroredDeviceTest, NodeCrashFailoverResyncReadmit)
{
    // Crash node 0 shortly into the workload, restart it while the
    // workload is still running. Client-side death takes at most
    // ~12*2 (retransmit exhaustion) + 2*(3+1) ms (reconnect
    // attempts), well inside the 60 ms outage.
    bed_->faults().scheduleNodeOutage(
        bed_->sim().now() + sim::msecs(5),
        bed_->sim().now() + sim::msecs(65), server(0));

    // ~150 ms of I/O: outage, degraded operation, resync, readmit.
    EXPECT_EQ(runIos(100), 100);

    EXPECT_EQ(server(0).crashCount(), 1u);
    EXPECT_EQ(server(0).restartCount(), 1u);
    EXPECT_GE(mirror().failoverCount(), 1u);
    EXPECT_EQ(mirror().readmitCount(), 1u);
    EXPECT_EQ(mirror().activeReplicas(), 2u);
    EXPECT_FALSE(mirror().degraded());
    EXPECT_EQ(mirror().dirtyBytes(), 0u);
    EXPECT_GT(mirror().resyncBytes(), 0u);
}

TEST_F(MirroredDeviceTest, ResyncedReplicaServesLatestData)
{
    // Seed every block with pattern A, mirrored to both nodes.
    const Addr buf_a = patternBuffer(1);
    for (uint64_t b = 0; b < 8; ++b)
        EXPECT_TRUE(oneIo(true, b * kIo, buf_a));

    // Crash node 0 and let its client die (a read cycles through it).
    server(0).crash();
    EXPECT_EQ(runIos(12), 12);
    ASSERT_TRUE(mirror().degraded());

    // Overwrite half the blocks with pattern B while degraded: only
    // the survivor sees these, the mirror logs them dirty.
    const Addr buf_b = patternBuffer(2);
    for (uint64_t b = 0; b < 4; ++b)
        EXPECT_TRUE(oneIo(true, b * kIo, buf_b));
    EXPECT_GT(mirror().dirtyBytes(), 0u);

    // Restart; background resync replays the missed writes and
    // readmits the node. Idle time only — no foreground I/O.
    server(0).restart();
    bed_->sim().runUntil(bed_->sim().now() + sim::msecs(200));
    ASSERT_EQ(mirror().readmitCount(), 1u);
    ASSERT_EQ(mirror().dirtyBytes(), 0u);

    // Kill the survivor: reads can now only come from the resynced
    // node 1... which must serve pattern B, not the stale pattern A.
    server(1).crash();
    const Addr rbuf = bed_->host().memory().allocate(kIo);
    for (uint64_t b = 0; b < 4; ++b) {
        ASSERT_TRUE(oneIo(false, b * kIo, rbuf));
        EXPECT_TRUE(checkPattern(rbuf, 2)) << "stale block " << b;
    }
    for (uint64_t b = 4; b < 8; ++b) {
        ASSERT_TRUE(oneIo(false, b * kIo, rbuf));
        EXPECT_TRUE(checkPattern(rbuf, 1)) << "stale block " << b;
    }
}

} // namespace
} // namespace v3sim::dsa
