/**
 * @file
 * Tests for the public cDSA 15-call API surface.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsa/cdsa_api.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"

namespace v3sim::dsa
{
namespace
{

using sim::Addr;
using sim::Task;

class CdsaApiTest : public ::testing::Test
{
  protected:
    CdsaApiTest()
        : sim_(77),
          fabric_(sim_.queue()),
          host_(sim_, osmodel::NodeConfig{.name = "db", .cpus = 4})
    {
        storage::V3ServerConfig config;
        config.cache_bytes = 4ull * 1024 * 1024;
        server_ = std::make_unique<storage::V3Server>(sim_, fabric_,
                                                      config);
        auto disks = server_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 2);
        volume_ = server_->volumeManager().addStripedVolume(
            disks, 64 * 1024);
        server_->start();
        nic_ = std::make_unique<vi::ViNic>(sim_, fabric_,
                                           host_.memory(), "nic");

        sim::spawn([](CdsaApiTest *test) -> Task<> {
            test->api_ = co_await CdsaApi::open(
                test->host_, *test->nic_,
                test->server_->nic().port(), test->volume_);
        }(this));
        sim_.run();
    }

    sim::Simulation sim_;
    net::Fabric fabric_;
    osmodel::Node host_;
    std::unique_ptr<storage::V3Server> server_;
    uint32_t volume_ = 0;
    std::unique_ptr<vi::ViNic> nic_;
    std::unique_ptr<CdsaApi> api_;
};

TEST_F(CdsaApiTest, OpenYieldsConnectedVolume)
{
    ASSERT_NE(api_, nullptr);
    const CdsaVolumeInfo info = api_->volumeInfo();
    EXPECT_TRUE(info.connected);
    EXPECT_GT(info.capacity_bytes, 0u);
    EXPECT_EQ(info.block_size, 8192u);
}

TEST_F(CdsaApiTest, SyncReadWrite)
{
    ASSERT_NE(api_, nullptr);
    const Addr wbuf = host_.memory().allocate(8192);
    const Addr rbuf = host_.memory().allocate(8192);
    host_.memory().fill(wbuf, 0x42, 8192);
    bool wrote = false, read = false;
    sim::spawn([](CdsaApi &api, Addr w, Addr r, bool &wo,
                  bool &ro) -> Task<> {
        wo = co_await api.write(0, 8192, w);
        ro = co_await api.read(0, 8192, r);
    }(*api_, wbuf, rbuf, wrote, read));
    sim_.run();
    EXPECT_TRUE(wrote);
    EXPECT_TRUE(read);
    uint8_t byte = 0;
    host_.memory().read(rbuf, &byte, 1);
    EXPECT_EQ(byte, 0x42);
}

TEST_F(CdsaApiTest, AsyncHandlePollAndWait)
{
    ASSERT_NE(api_, nullptr);
    const Addr buf = host_.memory().allocate(8192);
    CdsaIoHandle handle = api_->readAsync(0, 8192, buf);
    ASSERT_NE(handle, nullptr);
    EXPECT_FALSE(api_->poll(handle)); // nothing ran yet
    EXPECT_TRUE(api_->cancel(handle)); // still cancellable
    bool ok = false;
    sim::spawn([](CdsaApi &api, CdsaIoHandle h, bool &out) -> Task<> {
        out = co_await api.wait(h);
    }(*api_, handle, ok));
    sim_.run();
    EXPECT_TRUE(ok);
    EXPECT_TRUE(api_->poll(handle));
    EXPECT_FALSE(api_->cancel(handle)); // completed stays completed
}

TEST_F(CdsaApiTest, ScatterGatherRoundTrip)
{
    ASSERT_NE(api_, nullptr);
    std::vector<CdsaSegment> write_segments;
    std::vector<CdsaSegment> read_segments;
    for (int i = 0; i < 3; ++i) {
        CdsaSegment w;
        w.offset = static_cast<uint64_t>(i) * 32768;
        w.len = 8192;
        w.buffer = host_.memory().allocate(8192);
        host_.memory().fill(w.buffer,
                            static_cast<uint8_t>(0x10 + i), 8192);
        write_segments.push_back(w);
        CdsaSegment r = w;
        r.buffer = host_.memory().allocate(8192);
        read_segments.push_back(r);
    }
    bool wrote = false, read = false;
    sim::spawn([](CdsaApi &api, std::vector<CdsaSegment> &w,
                  std::vector<CdsaSegment> &r, bool &wo,
                  bool &ro) -> Task<> {
        wo = co_await api.writeScatter(w);
        ro = co_await api.readGather(r);
    }(*api_, write_segments, read_segments, wrote, read));
    sim_.run();
    ASSERT_TRUE(wrote);
    ASSERT_TRUE(read);
    for (int i = 0; i < 3; ++i) {
        uint8_t byte = 0;
        host_.memory().read(read_segments[static_cast<size_t>(i)]
                                .buffer,
                            &byte, 1);
        EXPECT_EQ(byte, 0x10 + i);
    }
}

TEST_F(CdsaApiTest, CompletionModeSwitch)
{
    ASSERT_NE(api_, nullptr);
    EXPECT_EQ(api_->completionMode(), CdsaCompletionMode::Polling);
    api_->setCompletionMode(CdsaCompletionMode::Interrupt);
    EXPECT_EQ(api_->completionMode(),
              CdsaCompletionMode::Interrupt);
}

TEST_F(CdsaApiTest, StatsReflectTraffic)
{
    ASSERT_NE(api_, nullptr);
    const Addr buf = host_.memory().allocate(8192);
    sim::spawn([](CdsaApi &api, Addr b) -> Task<> {
        for (int i = 0; i < 5; ++i)
            co_await api.read(static_cast<uint64_t>(i) * 8192, 8192,
                              b);
    }(*api_, buf));
    sim_.run();
    const CdsaStats stats = api_->stats();
    EXPECT_EQ(stats.ios, 5u);
    EXPECT_EQ(stats.retransmits, 0u);
    EXPECT_GT(stats.polled_completions + stats.interrupt_completions,
              0u);
    api_->hint(CdsaHint::Sequential, 0, 65536); // accepted quietly
    api_->close();
}

} // namespace
} // namespace v3sim::dsa
