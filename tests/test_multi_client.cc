/**
 * @file
 * Multi-client tests: several database hosts sharing one V3 node
 * (section 2.1: "Clients connect to V3 storage nodes through the VI
 * interconnect" — a storage node serves many clients), including
 * cross-client data visibility, per-connection flow control, and
 * mixed DSA implementations on one server.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"

namespace v3sim
{
namespace
{

using sim::Addr;
using sim::Task;

class MultiClientTest : public ::testing::Test
{
  protected:
    MultiClientTest() : sim_(55), fabric_(sim_.queue())
    {
        storage::V3ServerConfig config;
        config.cache_bytes = 4ull * 1024 * 1024;
        config.request_credits = 16;
        server_ = std::make_unique<storage::V3Server>(sim_, fabric_,
                                                      config);
        auto disks = server_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 4);
        volume_ = server_->volumeManager().addStripedVolume(
            disks, 64 * 1024);
        server_->start();
    }

    /** Creates one host + NIC + connected client. */
    dsa::DsaClient &
    addClient(dsa::DsaImpl impl)
    {
        hosts_.push_back(std::make_unique<osmodel::Node>(
            sim_, osmodel::NodeConfig{
                      .name = "db" + std::to_string(hosts_.size()),
                      .cpus = 4}));
        nics_.push_back(std::make_unique<vi::ViNic>(
            sim_, fabric_, hosts_.back()->memory(),
            hosts_.back()->name() + ".nic"));
        clients_.push_back(std::make_unique<dsa::DsaClient>(
            impl, *hosts_.back(), *nics_.back(),
            server_->nic().port(), volume_));
        dsa::DsaClient &client = *clients_.back();
        bool ok = false;
        sim::spawn([](dsa::DsaClient &c, bool &out) -> Task<> {
            out = co_await c.connect();
        }(client, ok));
        sim_.run();
        EXPECT_TRUE(ok);
        return client;
    }

    osmodel::Node &host(size_t i) { return *hosts_[i]; }

    sim::Simulation sim_;
    net::Fabric fabric_;
    std::unique_ptr<storage::V3Server> server_;
    uint32_t volume_ = 0;
    std::vector<std::unique_ptr<osmodel::Node>> hosts_;
    std::vector<std::unique_ptr<vi::ViNic>> nics_;
    std::vector<std::unique_ptr<dsa::DsaClient>> clients_;
};

TEST_F(MultiClientTest, DataWrittenByOneClientVisibleToAnother)
{
    dsa::DsaClient &writer = addClient(dsa::DsaImpl::Cdsa);
    dsa::DsaClient &reader = addClient(dsa::DsaImpl::Kdsa);

    const Addr wbuf = host(0).memory().allocate(8192);
    host(0).memory().fill(wbuf, 0xB7, 8192);
    const Addr rbuf = host(1).memory().allocate(8192);

    bool wrote = false, read = false;
    sim::spawn([](dsa::DsaClient &w, dsa::DsaClient &r, Addr wb,
                  Addr rb, bool &wo, bool &ro) -> Task<> {
        wo = co_await w.write(40960, 8192, wb);
        ro = co_await r.read(40960, 8192, rb);
    }(writer, reader, wbuf, rbuf, wrote, read));
    sim_.run();

    EXPECT_TRUE(wrote);
    EXPECT_TRUE(read);
    uint8_t byte = 0;
    host(1).memory().read(rbuf, &byte, 1);
    EXPECT_EQ(byte, 0xB7);
    // The reader's read was a server cache hit (the write landed in
    // the shared cache).
    EXPECT_GE(server_->cache()->hits(), 1u);
}

TEST_F(MultiClientTest, ThreeClientsConcurrentMixedTraffic)
{
    dsa::DsaClient &a = addClient(dsa::DsaImpl::Kdsa);
    dsa::DsaClient &b = addClient(dsa::DsaImpl::Wdsa);
    dsa::DsaClient &c = addClient(dsa::DsaImpl::Cdsa);

    int done = 0;
    auto worker = [](dsa::DsaClient &client, osmodel::Node &node,
                     uint64_t base, int &count) -> Task<> {
        const Addr buf = node.memory().allocate(8192);
        for (int i = 0; i < 20; ++i) {
            const uint64_t offset =
                base + static_cast<uint64_t>(i % 8) * 8192;
            if (i % 4 == 0)
                co_await client.write(offset, 8192, buf);
            else
                co_await client.read(offset, 8192, buf);
        }
        ++count;
    };
    sim::spawn(worker(a, host(0), 0, done));
    sim::spawn(worker(b, host(1), 1 << 20, done));
    sim::spawn(worker(c, host(2), 2 << 20, done));
    sim_.run();

    EXPECT_EQ(done, 3);
    EXPECT_EQ(server_->nic().recvOverruns(), 0u);
    EXPECT_EQ(a.ioCount() + b.ioCount() + c.ioCount(), 60u);
    EXPECT_EQ(server_->readCount() + server_->writeCount(), 60u);
}

TEST_F(MultiClientTest, PerConnectionFlowControlIsolated)
{
    // One client floods with more concurrency than its credits; a
    // second client's I/O still completes (server receives are
    // per-connection, so no cross-client overrun or starvation).
    dsa::DsaClient &flooder = addClient(dsa::DsaImpl::Cdsa);
    dsa::DsaClient &victim = addClient(dsa::DsaImpl::Cdsa);

    int flood_done = 0;
    for (int w = 0; w < 48; ++w) {
        sim::spawn([](dsa::DsaClient &c, osmodel::Node &n, int id,
                      int &count) -> Task<> {
            const Addr buf = n.memory().allocate(8192);
            co_await c.read(static_cast<uint64_t>(id) * 8192, 8192,
                            buf);
            ++count;
        }(flooder, host(0), w, flood_done));
    }
    bool victim_ok = false;
    sim::spawn([](dsa::DsaClient &c, osmodel::Node &n,
                  bool &out) -> Task<> {
        const Addr buf = n.memory().allocate(8192);
        out = co_await c.read(0, 8192, buf);
    }(victim, host(1), victim_ok));
    sim_.run();

    EXPECT_EQ(flood_done, 48);
    EXPECT_TRUE(victim_ok);
    EXPECT_EQ(server_->nic().recvOverruns(), 0u);
}

TEST_F(MultiClientTest, ConcurrentSameBlockMissesCoalesce)
{
    dsa::DsaClient &a = addClient(dsa::DsaImpl::Cdsa);
    dsa::DsaClient &b = addClient(dsa::DsaImpl::Cdsa);

    // Both clients read the same cold block simultaneously: the
    // server must fetch it from disk once.
    const Addr buf_a = host(0).memory().allocate(8192);
    const Addr buf_b = host(1).memory().allocate(8192);
    bool ok_a = false, ok_b = false;
    sim::spawn([](dsa::DsaClient &c, Addr buf, bool &out) -> Task<> {
        out = co_await c.read(81920, 8192, buf);
    }(a, buf_a, ok_a));
    sim::spawn([](dsa::DsaClient &c, Addr buf, bool &out) -> Task<> {
        out = co_await c.read(81920, 8192, buf);
    }(b, buf_b, ok_b));
    sim_.run();

    EXPECT_TRUE(ok_a);
    EXPECT_TRUE(ok_b);
    EXPECT_EQ(server_->diskManager().totalCompleted(), 1u);
}

} // namespace
} // namespace v3sim
