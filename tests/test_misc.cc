/**
 * @file
 * Remaining-coverage tests: logging, WaitGroup, multi-fragment send
 * reassembly under mid-stream loss, and NIC statistics.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "util/logging.hh"
#include "util/units.hh"
#include "vi/vi_nic.hh"

namespace v3sim
{
namespace
{

TEST(Logging, LevelGatingAndTimePrefix)
{
    util::Logger &logger = util::Logger::instance();
    const util::LogLevel saved = logger.level();

    logger.setLevel(util::LogLevel::Warn);
    EXPECT_FALSE(logger.enabled(util::LogLevel::Debug));
    EXPECT_TRUE(logger.enabled(util::LogLevel::Warn));
    EXPECT_TRUE(logger.enabled(util::LogLevel::Error));

    logger.setLevel(util::LogLevel::Off);
    EXPECT_FALSE(logger.enabled(util::LogLevel::Error));

    // A Simulation installs itself as the time source and removes
    // itself on destruction.
    {
        sim::Simulation sim;
        sim.queue().schedule(sim::usecs(5), [] {});
        sim.run();
        V3LOG(Error, "test") << "suppressed at level Off";
    }
    logger.setLevel(saved);
}

TEST(WaitGroup, ZeroCountIsImmediatelyReady)
{
    sim::Simulation sim;
    sim::WaitGroup group;
    bool resumed = false;
    sim::spawn([](sim::WaitGroup &g, bool &out) -> sim::Task<> {
        co_await g.wait();
        out = true;
    }(group, resumed));
    sim.run();
    EXPECT_TRUE(resumed);
}

TEST(WaitGroup, ResumesOnlyAtZero)
{
    sim::Simulation sim;
    sim::WaitGroup group;
    group.add(3);
    bool resumed = false;
    sim::spawn([](sim::WaitGroup &g, bool &out) -> sim::Task<> {
        co_await g.wait();
        out = true;
    }(group, resumed));
    sim.run();
    group.done();
    group.done();
    EXPECT_FALSE(resumed);
    EXPECT_EQ(group.pending(), 1);
    group.done();
    EXPECT_TRUE(resumed);
}

/** Multi-fragment send with a dropped middle fragment: receiver
 *  abandons the message, stays connected, and a fresh send works. */
TEST(ViFragmentation, MidStreamLossAbandonsMessageOnly)
{
    sim::Simulation sim(4);
    sim::MemorySpace cmem, smem;
    net::Fabric fabric(sim.queue());
    vi::ViNic client(sim, fabric, cmem, "c");
    vi::ViNic server(sim, fabric, smem, "s");
    vi::CompletionQueue rcq;
    vi::ViEndpoint &cep = client.createEndpoint(nullptr, nullptr);
    vi::ViEndpoint &sep = server.createEndpoint(nullptr, &rcq);
    server.setAcceptHandler(
        [&](net::PortId, vi::EndpointId) { return &sep; });
    client.connect(cep, server.port());
    sim.run();
    ASSERT_EQ(cep.state(), vi::EndpointState::Connected);

    // A 150 KB send fragments into three packets; drop the second.
    const uint64_t len = 150 * util::kKiB;
    const sim::Addr src = cmem.allocate(len);
    const sim::Addr dst = smem.allocate(len);
    const auto src_h =
        client.registry().registerMemory(src, len, true);
    const auto dst_h =
        server.registry().registerMemory(dst, len, true);

    int packet_index = 0;
    fabric.setDropFilter([&](const net::Packet &packet) {
        if (packet.dst != server.port())
            return false;
        ++packet_index;
        return packet_index == 2;
    });

    vi::WorkDescriptor recv;
    recv.cookie = 1;
    recv.local_addr = dst;
    recv.len = len;
    ASSERT_TRUE(server.postRecv(sep, recv, dst_h->handle));
    vi::WorkDescriptor send;
    send.local_addr = src;
    send.len = len;
    ASSERT_TRUE(client.postSend(cep, send, src_h->handle));
    sim.run();

    // The message never completed (its recv descriptor is consumed
    // and lost — DSA's request-level retransmission exists for
    // this), but the connection survived.
    EXPECT_TRUE(rcq.empty());
    EXPECT_EQ(sep.state(), vi::EndpointState::Connected);

    // A fresh small send still gets through.
    fabric.setDropFilter(nullptr);
    const sim::Addr dst2 = smem.allocate(64);
    const auto dst2_h =
        server.registry().registerMemory(dst2, 64, true);
    vi::WorkDescriptor recv2;
    recv2.cookie = 2;
    recv2.local_addr = dst2;
    recv2.len = 64;
    ASSERT_TRUE(server.postRecv(sep, recv2, dst2_h->handle));
    vi::WorkDescriptor send2;
    send2.local_addr = src;
    send2.len = 64;
    ASSERT_TRUE(client.postSend(cep, send2, src_h->handle));
    sim.run();
    auto completion = rcq.poll();
    ASSERT_TRUE(completion.has_value());
    EXPECT_EQ(completion->cookie, 2u);
}

TEST(ViNicStats, CountersTrackTraffic)
{
    sim::Simulation sim(6);
    sim::MemorySpace cmem, smem;
    net::Fabric fabric(sim.queue());
    vi::ViNic client(sim, fabric, cmem, "c");
    vi::ViNic server(sim, fabric, smem, "s");
    vi::CompletionQueue rcq;
    vi::ViEndpoint &cep = client.createEndpoint(nullptr, nullptr);
    vi::ViEndpoint &sep = server.createEndpoint(nullptr, &rcq);
    server.setAcceptHandler(
        [&](net::PortId, vi::EndpointId) { return &sep; });
    client.connect(cep, server.port());
    sim.run();

    const sim::Addr src = cmem.allocate(8192);
    const auto src_h =
        client.registry().registerMemory(src, 8192, true);
    const sim::Addr dst = smem.allocate(8192);
    const auto dst_h =
        server.registry().registerMemory(dst, 8192, true);
    ASSERT_TRUE(dst_h);

    const uint64_t sent_before = client.packetsSent();
    vi::WorkDescriptor rdma;
    rdma.local_addr = src;
    rdma.len = 8192;
    rdma.remote_addr = dst;
    ASSERT_TRUE(client.postRdmaWrite(cep, rdma, src_h->handle));
    sim.run();
    EXPECT_EQ(client.packetsSent() - sent_before, 1u);
    EXPECT_GE(server.packetsReceived(), 1u);
    EXPECT_EQ(server.recvOverruns(), 0u);
    EXPECT_EQ(server.protectionErrors(), 0u);
}

} // namespace
} // namespace v3sim
