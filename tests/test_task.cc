/**
 * @file
 * Unit tests for the coroutine layer: Task chaining, spawn, delays,
 * Completion bridging, and CondEvent broadcast.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/task.hh"

namespace v3sim::sim
{
namespace
{

Task<int>
answer()
{
    co_return 42;
}

TEST(Task, ReturnsValue)
{
    Simulation sim;
    int result = 0;
    spawn([](int &out) -> Task<> {
        out = co_await answer();
    }(result));
    sim.run();
    EXPECT_EQ(result, 42);
}

Task<int>
addOne(Task<int> inner)
{
    const int v = co_await std::move(inner);
    co_return v + 1;
}

TEST(Task, ChainsThroughNestedAwaits)
{
    Simulation sim;
    int result = 0;
    spawn([](int &out) -> Task<> {
        out = co_await addOne(addOne(addOne(answer())));
    }(result));
    sim.run();
    EXPECT_EQ(result, 45);
}

TEST(Task, DelayAdvancesSimulatedTime)
{
    Simulation sim;
    Tick woke_at = -1;
    spawn([](Simulation &s, Tick &out) -> Task<> {
        co_await s.sleep(usecs(250));
        out = s.now();
    }(sim, woke_at));
    sim.run();
    EXPECT_EQ(woke_at, usecs(250));
}

TEST(Task, SequentialDelaysAccumulate)
{
    Simulation sim;
    std::vector<Tick> stamps;
    spawn([](Simulation &s, std::vector<Tick> &out) -> Task<> {
        for (int i = 0; i < 3; ++i) {
            co_await s.sleep(usecs(10));
            out.push_back(s.now());
        }
    }(sim, stamps));
    sim.run();
    ASSERT_EQ(stamps.size(), 3u);
    EXPECT_EQ(stamps[0], usecs(10));
    EXPECT_EQ(stamps[1], usecs(20));
    EXPECT_EQ(stamps[2], usecs(30));
}

TEST(Task, SpawnedTasksInterleaveByTime)
{
    Simulation sim;
    std::vector<std::string> log;
    auto worker = [](Simulation &s, std::vector<std::string> &out,
                     std::string name, Tick step) -> Task<> {
        for (int i = 0; i < 2; ++i) {
            co_await s.sleep(step);
            out.push_back(name);
        }
    };
    spawn(worker(sim, log, "slow", usecs(30)));
    spawn(worker(sim, log, "fast", usecs(10)));
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{
                       "fast", "fast", "slow", "slow"}));
}

TEST(Task, CompletionBridgesCallbacks)
{
    Simulation sim;
    Completion<int> completion;
    int got = 0;
    spawn([](Completion<int> &c, int &out) -> Task<> {
        out = co_await c.wait();
    }(completion, got));
    sim.queue().schedule(usecs(100), [&] { completion.set(7); });
    sim.run();
    EXPECT_EQ(got, 7);
}

TEST(Task, CompletionAlreadySetCompletesImmediately)
{
    Simulation sim;
    Completion<int> completion;
    completion.set(9);
    int got = 0;
    spawn([](Completion<int> &c, int &out) -> Task<> {
        out = co_await c.wait();
    }(completion, got));
    sim.run();
    EXPECT_EQ(got, 9);
}

TEST(Task, VoidCompletion)
{
    Simulation sim;
    Completion<> completion;
    bool resumed = false;
    spawn([](Completion<> &c, bool &out) -> Task<> {
        co_await c.wait();
        out = true;
    }(completion, resumed));
    EXPECT_FALSE(resumed);
    sim.queue().schedule(usecs(5), [&] { completion.set(); });
    sim.run();
    EXPECT_TRUE(resumed);
}

TEST(Task, CondEventWakesAllWaiters)
{
    Simulation sim;
    CondEvent event;
    int woken = 0;
    for (int i = 0; i < 5; ++i) {
        spawn([](CondEvent &e, int &count) -> Task<> {
            co_await e.wait();
            ++count;
        }(event, woken));
    }
    sim.run();
    EXPECT_EQ(woken, 0);
    EXPECT_EQ(event.waiterCount(), 5u);
    event.notifyAll();
    sim.run();
    EXPECT_EQ(woken, 5);
    EXPECT_EQ(event.waiterCount(), 0u);
}

TEST(Task, CondEventReWaitNotWokenBySameRound)
{
    Simulation sim;
    CondEvent event;
    int wakes = 0;
    spawn([](CondEvent &e, int &count) -> Task<> {
        co_await e.wait();
        ++count;
        co_await e.wait(); // re-armed; needs a second notify
        ++count;
    }(event, wakes));
    sim.run();
    event.notifyAll();
    EXPECT_EQ(wakes, 1);
    event.notifyAll();
    EXPECT_EQ(wakes, 2);
}

Task<std::string>
describe(Simulation &sim, Tick d)
{
    co_await sim.sleep(d);
    co_return std::string("done@") + std::to_string(toUsecs(sim.now()));
}

TEST(Task, MoveOnlyResultsPropagate)
{
    Simulation sim;
    std::string result;
    spawn([](Simulation &s, std::string &out) -> Task<> {
        out = co_await describe(s, usecs(50));
    }(sim, result));
    sim.run();
    EXPECT_EQ(result, "done@50.000000");
}

TEST(Task, ManyConcurrentTasksComplete)
{
    Simulation sim;
    int done = 0;
    for (int i = 0; i < 1000; ++i) {
        spawn([](Simulation &s, int &count, Tick d) -> Task<> {
            co_await s.sleep(d);
            ++count;
        }(sim, done, usecs(i % 97)));
    }
    sim.run();
    EXPECT_EQ(done, 1000);
}

} // namespace
} // namespace v3sim::sim
