/**
 * @file
 * Randomized invariant tests ("fuzz" style, deterministic seeds):
 * long random operation sequences against the block caches and the
 * NIC registry, checking structural invariants at every step rather
 * than specific outcomes. Parameterized across policies and seeds.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "sim/random.hh"
#include "storage/block_cache.hh"
#include "storage/mq_cache.hh"
#include "storage/v3_server.hh"
#include "vi/memory_registry.hh"

namespace v3sim
{
namespace
{

/** (policy, seed) matrix for the cache fuzz. */
class CacheFuzz
    : public ::testing::TestWithParam<
          std::tuple<storage::CachePolicy, uint64_t>>
{
  protected:
    static std::unique_ptr<storage::BlockCache>
    makeCache(sim::MemorySpace &mem, uint64_t capacity)
    {
        if (std::get<0>(GetParam()) == storage::CachePolicy::Mq)
            return std::make_unique<storage::MqCache>(mem, 4096,
                                                      capacity);
        return std::make_unique<storage::LruCache>(mem, 4096,
                                                   capacity);
    }
};

TEST_P(CacheFuzz, InvariantsHoldUnderRandomOps)
{
    constexpr uint64_t kCapacity = 64;
    sim::MemorySpace mem;
    auto cache = makeCache(mem, kCapacity);
    sim::Rng rng(std::get<1>(GetParam()));

    // Model state: pin counts we believe each key has.
    std::map<uint64_t, int> pins;

    for (int step = 0; step < 50000; ++step) {
        const uint64_t block = rng.uniformInt(0, 255);
        const storage::CacheKey key{0, block};
        const int action = static_cast<int>(rng.uniformInt(0, 3));

        switch (action) {
          case 0: { // lookup
            if (auto frame = cache->lookupAndPin(key)) {
                ++pins[block];
                EXPECT_TRUE(cache->contains(key));
                EXPECT_GE(*frame, cache->frameBase());
                EXPECT_LT(*frame,
                          cache->frameBase() + cache->frameBytes());
            }
            break;
          }
          case 1: { // insert
            // Keep some frames unpinned so inserts can evict.
            uint64_t pinned_frames = 0;
            for (const auto &[k, count] : pins)
                pinned_frames += count > 0 ? 1 : 0;
            if (pinned_frames >= kCapacity - 2)
                break;
            if (cache->insertAndPin(key)) {
                ++pins[block];
                EXPECT_TRUE(cache->contains(key));
            }
            break;
          }
          case 2: { // unpin
            auto it = pins.find(block);
            if (it != pins.end() && it->second > 0) {
                cache->unpin(key);
                --it->second;
            }
            break;
          }
          case 3: { // invalidate
            cache->invalidate(key);
            if (pins[block] > 0) {
                // Pinned: must still be resident.
                EXPECT_TRUE(cache->contains(key));
            } else {
                EXPECT_FALSE(cache->contains(key));
            }
            break;
          }
        }

        // Global invariants every step.
        ASSERT_LE(cache->residentBlocks(), kCapacity);
        // Every pinned block must be resident (never evicted).
        if (step % 512 == 0) {
            for (const auto &[k, count] : pins) {
                if (count > 0) {
                    ASSERT_TRUE(cache->contains(
                        storage::CacheKey{0, k}))
                        << "pinned block " << k << " evicted";
                }
            }
        }
    }

    // Drain pins; afterwards everything must be evictable.
    for (auto &[block, count] : pins) {
        while (count-- > 0)
            cache->unpin(storage::CacheKey{0, block});
    }
    for (uint64_t block = 0; block < 256; ++block)
        cache->invalidate(storage::CacheKey{0, block});
    EXPECT_EQ(cache->residentBlocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySeed, CacheFuzz,
    ::testing::Combine(::testing::Values(storage::CachePolicy::Lru,
                                         storage::CachePolicy::Mq),
                       ::testing::Values(1u, 7u, 1234u)),
    [](const ::testing::TestParamInfo<
        std::tuple<storage::CachePolicy, uint64_t>> &info) {
        return std::string(std::get<0>(info.param) ==
                                   storage::CachePolicy::Mq
                               ? "MQ"
                               : "LRU") +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

/** Registry fuzz: random register/deregister/region ops. */
class RegistryFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RegistryFuzz, AccountingStaysConsistent)
{
    vi::ViCosts costs;
    costs.max_registered_bytes = 4ull * 1024 * 1024;
    costs.max_table_entries = 512;
    vi::MemoryRegistry registry(costs, 16);
    sim::Rng rng(GetParam());

    struct Live
    {
        vi::MemHandle handle;
        sim::Addr addr;
        uint64_t len;
    };
    std::vector<Live> live;
    uint64_t live_bytes = 0;
    sim::Addr next_addr = 1 << 20;

    for (int step = 0; step < 20000; ++step) {
        const int action = static_cast<int>(rng.uniformInt(0, 2));
        if (action == 0) {
            const uint64_t len = 4096u
                                 << rng.uniformInt(0, 3); // 4-32K
            auto reg = registry.registerMemory(next_addr, len, true);
            if (reg) {
                // Handle must cover its own range, and only that.
                ASSERT_TRUE(
                    registry.covers(reg->handle, next_addr, len));
                ASSERT_FALSE(registry.covers(reg->handle,
                                             next_addr + len, 1));
                live.push_back(Live{reg->handle, next_addr, len});
                live_bytes += len;
            } else {
                // Failure only under genuine pressure.
                ASSERT_TRUE(live.size() == 512 ||
                            live_bytes + len >
                                costs.max_registered_bytes);
            }
            next_addr += 64 * 1024;
        } else if (action == 1 && !live.empty()) {
            const size_t pick = rng.uniformInt(0, live.size() - 1);
            ASSERT_TRUE(
                registry.deregister(live[pick].handle).has_value());
            // Double dereg must fail.
            ASSERT_FALSE(
                registry.deregister(live[pick].handle).has_value());
            live_bytes -= live[pick].len;
            live[pick] = live.back();
            live.pop_back();
        } else if (action == 2 && !live.empty()) {
            // Deregister a whole region; drop every matching entry
            // from the model.
            const size_t pick = rng.uniformInt(0, live.size() - 1);
            const uint32_t region =
                registry.regionOf(live[pick].handle);
            registry.deregisterRegion(region);
            for (size_t i = 0; i < live.size();) {
                if (registry.regionOf(live[i].handle) == region) {
                    live_bytes -= live[i].len;
                    live[i] = live.back();
                    live.pop_back();
                } else {
                    ++i;
                }
            }
        }

        ASSERT_EQ(registry.registeredBytes(), live_bytes);
        ASSERT_EQ(registry.liveEntries(), live.size());
    }

    // Full teardown: the table must end empty.
    for (const Live &entry : live)
        registry.deregister(entry.handle);
    EXPECT_EQ(registry.liveEntries(), 0u);
    EXPECT_EQ(registry.registeredBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryFuzz,
                         ::testing::Values(3u, 99u, 2026u));

} // namespace
} // namespace v3sim
