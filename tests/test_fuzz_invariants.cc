/**
 * @file
 * Randomized invariant tests ("fuzz" style, deterministic seeds):
 * long random operation sequences against the block caches and the
 * NIC registry, checking structural invariants at every step rather
 * than specific outcomes. Parameterized across policies and seeds.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "sim/random.hh"
#include "storage/admission.hh"
#include "storage/block_cache.hh"
#include "storage/mq_cache.hh"
#include "storage/v3_server.hh"
#include "vi/memory_registry.hh"

namespace v3sim
{
namespace
{

/** (policy, seed) matrix for the cache fuzz. */
class CacheFuzz
    : public ::testing::TestWithParam<
          std::tuple<storage::CachePolicy, uint64_t>>
{
  protected:
    static std::unique_ptr<storage::BlockCache>
    makeCache(sim::MemorySpace &mem, uint64_t capacity)
    {
        if (std::get<0>(GetParam()) == storage::CachePolicy::Mq)
            return std::make_unique<storage::MqCache>(mem, 4096,
                                                      capacity);
        return std::make_unique<storage::LruCache>(mem, 4096,
                                                   capacity);
    }
};

TEST_P(CacheFuzz, InvariantsHoldUnderRandomOps)
{
    constexpr uint64_t kCapacity = 64;
    sim::MemorySpace mem;
    auto cache = makeCache(mem, kCapacity);
    sim::Rng rng(std::get<1>(GetParam()));

    // Model state: pin counts we believe each key has.
    std::map<uint64_t, int> pins;

    for (int step = 0; step < 50000; ++step) {
        const uint64_t block = rng.uniformInt(0, 255);
        const storage::CacheKey key{0, block};
        const int action = static_cast<int>(rng.uniformInt(0, 3));

        switch (action) {
          case 0: { // lookup
            if (auto frame = cache->lookupAndPin(key)) {
                ++pins[block];
                EXPECT_TRUE(cache->contains(key));
                EXPECT_GE(*frame, cache->frameBase());
                EXPECT_LT(*frame,
                          cache->frameBase() + cache->frameBytes());
            }
            break;
          }
          case 1: { // insert
            // Keep some frames unpinned so inserts can evict.
            uint64_t pinned_frames = 0;
            for (const auto &[k, count] : pins)
                pinned_frames += count > 0 ? 1 : 0;
            if (pinned_frames >= kCapacity - 2)
                break;
            if (cache->insertAndPin(key)) {
                ++pins[block];
                EXPECT_TRUE(cache->contains(key));
            }
            break;
          }
          case 2: { // unpin
            auto it = pins.find(block);
            if (it != pins.end() && it->second > 0) {
                cache->unpin(key);
                --it->second;
            }
            break;
          }
          case 3: { // invalidate
            cache->invalidate(key);
            if (pins[block] > 0) {
                // Pinned: must still be resident.
                EXPECT_TRUE(cache->contains(key));
            } else {
                EXPECT_FALSE(cache->contains(key));
            }
            break;
          }
        }

        // Global invariants every step.
        ASSERT_LE(cache->residentBlocks(), kCapacity);
        // Every pinned block must be resident (never evicted).
        if (step % 512 == 0) {
            for (const auto &[k, count] : pins) {
                if (count > 0) {
                    ASSERT_TRUE(cache->contains(
                        storage::CacheKey{0, k}))
                        << "pinned block " << k << " evicted";
                }
            }
        }
    }

    // Drain pins; afterwards everything must be evictable.
    for (auto &[block, count] : pins) {
        while (count-- > 0)
            cache->unpin(storage::CacheKey{0, block});
    }
    for (uint64_t block = 0; block < 256; ++block)
        cache->invalidate(storage::CacheKey{0, block});
    EXPECT_EQ(cache->residentBlocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyBySeed, CacheFuzz,
    ::testing::Combine(::testing::Values(storage::CachePolicy::Lru,
                                         storage::CachePolicy::Mq),
                       ::testing::Values(1u, 7u, 1234u)),
    [](const ::testing::TestParamInfo<
        std::tuple<storage::CachePolicy, uint64_t>> &info) {
        return std::string(std::get<0>(info.param) ==
                                   storage::CachePolicy::Mq
                               ? "MQ"
                               : "LRU") +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

/** Registry fuzz: random register/deregister/region ops. */
class RegistryFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RegistryFuzz, AccountingStaysConsistent)
{
    vi::ViCosts costs;
    costs.max_registered_bytes = 4ull * 1024 * 1024;
    costs.max_table_entries = 512;
    vi::MemoryRegistry registry(costs, 16);
    sim::Rng rng(GetParam());

    struct Live
    {
        vi::MemHandle handle;
        sim::Addr addr;
        uint64_t len;
    };
    std::vector<Live> live;
    uint64_t live_bytes = 0;
    sim::Addr next_addr = 1 << 20;

    for (int step = 0; step < 20000; ++step) {
        const int action = static_cast<int>(rng.uniformInt(0, 2));
        if (action == 0) {
            const uint64_t len = 4096u
                                 << rng.uniformInt(0, 3); // 4-32K
            auto reg = registry.registerMemory(next_addr, len, true);
            if (reg) {
                // Handle must cover its own range, and only that.
                ASSERT_TRUE(
                    registry.covers(reg->handle, next_addr, len));
                ASSERT_FALSE(registry.covers(reg->handle,
                                             next_addr + len, 1));
                live.push_back(Live{reg->handle, next_addr, len});
                live_bytes += len;
            } else {
                // Failure only under genuine pressure.
                ASSERT_TRUE(live.size() == 512 ||
                            live_bytes + len >
                                costs.max_registered_bytes);
            }
            next_addr += 64 * 1024;
        } else if (action == 1 && !live.empty()) {
            const size_t pick = rng.uniformInt(0, live.size() - 1);
            ASSERT_TRUE(
                registry.deregister(live[pick].handle).has_value());
            // Double dereg must fail.
            ASSERT_FALSE(
                registry.deregister(live[pick].handle).has_value());
            live_bytes -= live[pick].len;
            live[pick] = live.back();
            live.pop_back();
        } else if (action == 2 && !live.empty()) {
            // Deregister a whole region; drop every matching entry
            // from the model.
            const size_t pick = rng.uniformInt(0, live.size() - 1);
            const uint32_t region =
                registry.regionOf(live[pick].handle);
            registry.deregisterRegion(region);
            for (size_t i = 0; i < live.size();) {
                if (registry.regionOf(live[i].handle) == region) {
                    live_bytes -= live[i].len;
                    live[i] = live.back();
                    live.pop_back();
                } else {
                    ++i;
                }
            }
        }

        ASSERT_EQ(registry.registeredBytes(), live_bytes);
        ASSERT_EQ(registry.liveEntries(), live.size());
    }

    // Full teardown: the table must end empty.
    for (const Live &entry : live)
        registry.deregister(entry.handle);
    EXPECT_EQ(registry.liveEntries(), 0u);
    EXPECT_EQ(registry.registeredBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryFuzz,
                         ::testing::Values(3u, 99u, 2026u));

/** Admission-gate fuzz (DESIGN.md §12): random offer/dispatch/
 *  release sequences against the pure AdmissionQueue. */
class AdmissionFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AdmissionFuzz, BoundsHoldAndEveryArrivalDisposedOnce)
{
    storage::AdmissionConfig config;
    config.enabled = true;
    config.service_slots = 6;
    config.max_queue_depth = 32;
    config.drr_quantum = 8192;
    storage::AdmissionQueue queue(config);
    sim::Rng rng(GetParam());

    using Decision = storage::AdmissionQueue::Decision;
    uint64_t next_token = 1;
    // Model state: tokens we believe are queued, and how many times
    // each offered token has been disposed (must end at exactly 1).
    std::set<uint64_t> queued_tokens;
    std::map<uint64_t, int> disposed;

    const auto pump = [&]() {
        while (auto token = queue.next()) {
            // Every dispatch must be a token we queued, once.
            ASSERT_EQ(queued_tokens.erase(*token), 1u);
            ++disposed[*token];
        }
    };

    for (int step = 0; step < 50000; ++step) {
        const int action = static_cast<int>(rng.uniformInt(0, 3));
        if (action <= 1) { // arrivals dominate: keep it backlogged
            const uint64_t tenant = rng.uniformInt(0, 7);
            const uint64_t cost = 4096u << rng.uniformInt(0, 3);
            const uint64_t token = next_token++;
            switch (queue.offer(tenant, cost, token)) {
              case Decision::Admit:
              case Decision::Shed:
                ++disposed[token];
                break;
              case Decision::Queue:
                queued_tokens.insert(token);
                break;
            }
        } else if (action == 2 && queue.inServiceCount() > 0) {
            queue.release();
        } else if (action == 3) {
            pump();
        }

        // Structural bounds, every step.
        ASSERT_LE(queue.queuedCount(), config.max_queue_depth);
        ASSERT_LE(queue.inServiceCount(), config.service_slots);
        ASSERT_EQ(queue.queuedCount(), queued_tokens.size());
    }

    // Drain: everything still queued must come back exactly once.
    while (queue.queuedCount() > 0 || queue.inServiceCount() > 0) {
        if (queue.inServiceCount() > 0)
            queue.release();
        pump();
    }
    EXPECT_TRUE(queued_tokens.empty());
    EXPECT_EQ(disposed.size(), static_cast<size_t>(next_token - 1));
    for (const auto &[token, count] : disposed)
        ASSERT_EQ(count, 1) << "token " << token;
}

TEST_P(AdmissionFuzz, DrrSharesConvergeUnderAdversarialMix)
{
    storage::AdmissionConfig config;
    config.enabled = true;
    config.service_slots = 4;
    config.max_queue_depth = 64;
    config.drr_quantum = 8192;
    storage::AdmissionQueue queue(config);
    sim::Rng rng(GetParam());

    using Decision = storage::AdmissionQueue::Decision;
    // Tenant 0 is the hog: every request 32K, backlog always full.
    // Tenants 1-3 issue small (4-8K) requests. DRR must still hand
    // each backlogged tenant a quantum-proportional *byte* share.
    const auto costOf = [&](uint64_t tenant) -> uint64_t {
        return tenant == 0 ? 32768 : 4096u << rng.uniformInt(0, 1);
    };
    uint64_t next_token = 1;
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> queued; // t,c

    // Fill the service slots via a bystander tenant so every
    // subsequent offer queues (direct admission bypasses DRR).
    for (uint32_t i = 0; i < config.service_slots; ++i)
        ASSERT_EQ(queue.offer(99, 4096, next_token++),
                  Decision::Admit);

    const auto topUp = [&]() {
        for (uint64_t tenant = 0; tenant < 4; ++tenant) {
            while (queue.queuedForTenant(tenant) < 8) {
                const uint64_t cost = costOf(tenant);
                const uint64_t token = next_token++;
                ASSERT_EQ(queue.offer(tenant, cost, token),
                          Decision::Queue);
                queued[token] = {tenant, cost};
            }
        }
    };

    std::map<uint64_t, uint64_t> bytes;
    for (int round = 0; round < 4000; ++round) {
        topUp();
        queue.release(); // one service completion frees a slot...
        const auto token = queue.next(); // ...and DRR refills it
        ASSERT_TRUE(token.has_value());
        const auto it = queued.find(*token);
        ASSERT_NE(it, queued.end());
        bytes[it->second.first] += it->second.second;
        queued.erase(it);
    }

    uint64_t total = 0;
    for (const auto &[tenant, b] : bytes)
        total += b;
    const double fair = static_cast<double>(total) / 4.0;
    for (uint64_t tenant = 0; tenant < 4; ++tenant) {
        EXPECT_GT(static_cast<double>(bytes[tenant]), 0.75 * fair)
            << "tenant " << tenant << " starved";
        EXPECT_LT(static_cast<double>(bytes[tenant]), 1.25 * fair)
            << "tenant " << tenant << " over-served";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionFuzz,
                         ::testing::Values(5u, 47u, 2026u));

} // namespace
} // namespace v3sim
