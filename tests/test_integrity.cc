/**
 * @file
 * End-to-end data integrity tests: the CRC32C digest itself, the
 * completion-flag digest packing, and the full detect-and-repair
 * pipeline — wire corruption recovered by retransmission, RDMA/DMA
 * corruption caught by the staging digest, latent sector errors and
 * torn writes found by verify-on-read and repaired from the mirror
 * peer, and the background scrubber catching rot in cold data.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsa/protocol.hh"
#include "scenarios/testbed.hh"
#include "util/crc32c.hh"

namespace v3sim::dsa
{
namespace
{

using scenarios::Backend;
using scenarios::HostParams;
using scenarios::StorageParams;
using scenarios::Testbed;
using sim::Addr;
using sim::Task;

TEST(Crc32c, KnownAnswerVectorAndChaining)
{
    // RFC 3720's CRC32C check vector: the iSCSI digest this models.
    const char *vec = "123456789";
    EXPECT_EQ(util::crc32c(vec, 9), 0xE3069283u);

    // Seed chaining digests discontiguous pieces as one stream.
    const uint32_t head = util::crc32c(vec, 4);
    EXPECT_EQ(util::crc32c(vec + 4, 5, head), 0xE3069283u);

    // Zero-length input is the identity on the running digest.
    EXPECT_EQ(util::crc32c(vec, 0), 0u);
    EXPECT_EQ(util::crc32c(vec, 0, head), head);
}

TEST(DsaProtocol, FlagWordCarriesStatusAndDigest)
{
    // RdmaFlag completions pack the read payload's CRC32C into the
    // flag word's upper half; status decoding must see through it.
    const uint64_t flag = flagValue(IoStatus::Ok, 0xDEADBEEFu);
    EXPECT_NE(flag & kFlagDone, 0u);
    EXPECT_EQ(statusFromFlag(flag), IoStatus::Ok);
    EXPECT_EQ(digestFromFlag(flag), 0xDEADBEEFu);

    // No digest (phantom memory) leaves the upper half zero.
    EXPECT_EQ(digestFromFlag(flagValue(IoStatus::Ok)), 0u);

    // An all-ones digest must not bleed into the status bits.
    EXPECT_EQ(statusFromFlag(flagValue(IoStatus::IntegrityError,
                                       0xFFFFFFFFu)),
              IoStatus::IntegrityError);
    EXPECT_EQ(statusFromFlag(flagValue(IoStatus::BadDigest,
                                       0xFFFFFFFFu)),
              IoStatus::BadDigest);
    EXPECT_EQ(statusFromFlag(flagValue(IoStatus::Error, 0x12345678u)),
              IoStatus::Error);
}

constexpr uint64_t kIo = 8192;

/**
 * A mirrored 2-node cDSA testbed with real (non-phantom) memory and
 * small disks, so on-media damage is cheap to inject and to scrub.
 * The retransmit timer sits above the disk latency tail: corruption
 * recovery must come from digest detection, never from spurious
 * timeouts.
 */
class IntegrityTest : public ::testing::Test
{
  protected:
    explicit IntegrityTest(uint64_t scrub_rate = 0,
                           uint32_t scrub_passes = 0)
    {
        dsa::DsaConfig dsa_config;
        dsa_config.retransmit_timeout = sim::msecs(40);
        dsa_config.max_retransmits = 8;
        dsa_config.reconnect_delay = sim::msecs(1);
        dsa_config.max_reconnect_attempts = 2;
        dsa_config.connect_timeout = sim::msecs(3);

        StorageParams storage_params;
        storage_params.v3_nodes = 2;
        storage_params.disks_per_node = 2;
        storage_params.disk_spec = disk::DiskSpec::scsi10k();
        storage_params.disk_spec.capacity_bytes = 2 * util::kMiB;
        storage_params.cache_bytes_per_node = 4 * util::kMiB;
        storage_params.mirrored = true;
        storage_params.mirror.probe_interval = sim::msecs(2);
        storage_params.mirror.scrub_rate_bytes_per_sec = scrub_rate;
        storage_params.mirror.scrub_chunk = 64 * util::kKiB;
        storage_params.mirror.scrub_pass_limit = scrub_passes;

        bed_ = std::make_unique<Testbed>(
            Backend::Cdsa, HostParams::midSize(), storage_params,
            dsa_config, /*seed=*/17);
        EXPECT_TRUE(bed_->connectAll());
    }

    MirroredDevice &mirror() { return *bed_->mirrors().front(); }

    storage::V3Server &server(size_t n)
    {
        return *bed_->servers()[n];
    }

    /** One I/O straight through the mirror; returns its status. */
    bool
    oneIo(bool write, uint64_t offset, Addr buf)
    {
        bool ok = false;
        sim::spawn([](BlockDevice &device, bool w, uint64_t off,
                      Addr b, bool &out) -> Task<> {
            out = w ? co_await device.write(off, kIo, b)
                    : co_await device.read(off, kIo, b);
        }(mirror(), write, offset, buf, ok));
        bed_->sim().runUntil(bed_->sim().now() + sim::msecs(500));
        return ok;
    }

    /** Evicts [offset, offset+kIo) from server @p n's cache so the
     *  next read faults it from media (and its verify-on-read). */
    bool
    dropFromCache(size_t n, uint64_t offset)
    {
        bool ok = false;
        sim::spawn([](DsaClient &c, uint64_t off, bool &out)
                       -> Task<> {
            out = co_await c.hint(HintKind::DontNeed, off, kIo);
        }(*bed_->clients()[n], offset, ok));
        bed_->sim().runUntil(bed_->sim().now() + sim::msecs(50));
        return ok;
    }

    Addr
    patternBuffer(uint8_t salt)
    {
        const Addr buffer = bed_->host().memory().allocate(kIo);
        std::vector<uint8_t> data(kIo);
        for (uint64_t i = 0; i < kIo; ++i)
            data[i] = static_cast<uint8_t>((i * 7 + salt) & 0xFF);
        bed_->host().memory().write(buffer, data.data(), kIo);
        return buffer;
    }

    bool
    checkPattern(Addr buffer, uint8_t salt)
    {
        std::vector<uint8_t> data(kIo);
        bed_->host().memory().read(buffer, data.data(), kIo);
        for (uint64_t i = 0; i < kIo; ++i) {
            if (data[i] !=
                static_cast<uint8_t>((i * 7 + salt) & 0xFF)) {
                return false;
            }
        }
        return true;
    }

    std::unique_ptr<Testbed> bed_;
};

TEST_F(IntegrityTest, WireCorruptionDetectedAndRecovered)
{
    const Addr buf = patternBuffer(3);
    ASSERT_TRUE(oneIo(true, 0, buf));

    // Damage the next six delivered packets — requests, responses or
    // RDMA data, whatever flows next. Every read must still return
    // the exact pattern: damage is detected end to end and recovered
    // by retransmission, never surfaced to the application.
    bed_->faults().corruptNext(6);
    const Addr rbuf = bed_->host().memory().allocate(kIo);
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(oneIo(false, 0, rbuf)) << "read " << i;
        EXPECT_TRUE(checkPattern(rbuf, 3)) << "read " << i;
    }
    EXPECT_EQ(bed_->faults().corruptedCount(), 6u);
    EXPECT_EQ(bed_->faults().droppedCount(), 0u);

    uint64_t retransmits = 0;
    uint64_t detections = 0;
    for (auto &client : bed_->clients()) {
        retransmits += client->retransmitCount();
        detections += client->digestMismatchCount();
    }
    for (auto &srv : bed_->servers()) {
        detections +=
            srv->digestMismatchCount() + srv->badRequestCount();
    }
    EXPECT_GE(retransmits, 1u);
    EXPECT_GE(detections, 1u);
}

TEST_F(IntegrityTest, RdmaStagingCorruptionDetected)
{
    // Damage the next inbound RDMA fragment at server 0's DMA engine
    // — past the link CRC, so only the end-to-end staging digest can
    // tell. The server rejects the staged write payload and the
    // client's retransmission re-stages clean bytes.
    bed_->faults().corruptRdmaNext(server(0).nic(), 1);

    const Addr buf = patternBuffer(4);
    ASSERT_TRUE(oneIo(true, kIo, buf)); // mirrored despite the hit
    EXPECT_GE(server(0).digestMismatchCount(), 1u);

    // Both replicas committed the clean payload: force reads off
    // both (round-robin) and verify the pattern.
    const Addr rbuf = bed_->host().memory().allocate(kIo);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(oneIo(false, kIo, rbuf));
        EXPECT_TRUE(checkPattern(rbuf, 4)) << "read " << i;
    }
    EXPECT_EQ(mirror().unrecoverableCount(), 0u);
}

TEST_F(IntegrityTest, LatentErrorDetectedAndRepairedFromMirror)
{
    const Addr buf = patternBuffer(5);
    ASSERT_TRUE(oneIo(true, 0, buf)); // duplicated to both replicas

    // Rot the block on replica 0's media, then evict it from that
    // server's cache so a read actually faults it from the disk.
    bed_->faults().injectLatentError(server(0).diskManager().disk(0),
                                     0, kIo);
    ASSERT_TRUE(dropFromCache(0, 0));

    const disk::Volume *vol0 = server(0).volumeManager().volume(0);
    ASSERT_NE(vol0, nullptr);
    ASSERT_TRUE(vol0->corrupt(0, kIo));

    // Reads round-robin across replicas, so the rotten leg is hit
    // within a few tries; verify-on-read fires there and the mirror
    // rewrites the bad copy from its peer. Every read returns the
    // true pattern — the damage is never visible to the application.
    const Addr rbuf = bed_->host().memory().allocate(kIo);
    for (int i = 0; i < 8 && vol0->corrupt(0, kIo); ++i) {
        ASSERT_TRUE(oneIo(false, 0, rbuf)) << "read " << i;
        EXPECT_TRUE(checkPattern(rbuf, 5)) << "read " << i;
    }
    EXPECT_FALSE(vol0->corrupt(0, kIo));
    EXPECT_GE(server(0).integrityErrorCount(), 1u);
    EXPECT_GE(mirror().integrityRepairCount(), 1u);
    EXPECT_EQ(mirror().unrecoverableCount(), 0u);

    // Data rot is repaired in place, not treated as node death.
    EXPECT_EQ(mirror().failoverCount(), 0u);
    EXPECT_EQ(mirror().activeReplicas(), 2u);
}

TEST_F(IntegrityTest, TornWriteDetectedAndRepaired)
{
    // Arm a certain tear on replica 0's disk, write one block
    // through the mirror, disarm. The tear silently corrupts the
    // tail sectors of replica 0's copy; replica 1 stays intact.
    auto &media = server(0).diskManager().disk(0);
    bed_->faults().setTornWriteRate(media, 1.0);
    const Addr buf = patternBuffer(7);
    ASSERT_TRUE(oneIo(true, 0, buf));
    bed_->faults().setTornWriteRate(media, 0.0);
    EXPECT_GE(media.tornWriteCount(), 1u);

    const disk::Volume *vol0 = server(0).volumeManager().volume(0);
    ASSERT_NE(vol0, nullptr);
    ASSERT_TRUE(vol0->corrupt(0, kIo));

    // The damaged copy hides behind a warm cache; evict it, then
    // read until verify-on-read finds it and the mirror repairs.
    ASSERT_TRUE(dropFromCache(0, 0));
    const Addr rbuf = bed_->host().memory().allocate(kIo);
    for (int i = 0; i < 8 && vol0->corrupt(0, kIo); ++i) {
        ASSERT_TRUE(oneIo(false, 0, rbuf)) << "read " << i;
        EXPECT_TRUE(checkPattern(rbuf, 7)) << "read " << i;
    }
    EXPECT_FALSE(vol0->corrupt(0, kIo));
    EXPECT_GE(mirror().integrityRepairCount(), 1u);
    EXPECT_EQ(mirror().unrecoverableCount(), 0u);
}

/** The fixture with the background scrubber armed: 32 MiB/s, two
 *  full passes so Simulation::run() terminates. */
class ScrubberTest : public IntegrityTest
{
  protected:
    ScrubberTest() : IntegrityTest(32 * util::kMiB, /*passes=*/2) {}
};

TEST_F(ScrubberTest, ScrubberRepairsColdDamage)
{
    // Rot a block no application I/O ever touches (volume offset
    // 64 K maps to replica 1's second disk): only the scrubber's
    // walk can find it. Injected before any I/O — the scrubber
    // starts with the first write and would otherwise finish its
    // bounded passes before the damage exists.
    bed_->faults().injectLatentError(server(1).diskManager().disk(1),
                                     0, kIo);
    const disk::Volume *vol1 = server(1).volumeManager().volume(0);
    ASSERT_NE(vol1, nullptr);
    ASSERT_TRUE(vol1->corrupt(64 * util::kKiB, kIo));

    // One write starts the lazily spawned scrubber.
    const Addr buf = patternBuffer(6);
    ASSERT_TRUE(oneIo(true, 0, buf));

    // Drain: the pass-bounded scrubber walks both replicas twice and
    // then stops, so the event queue empties.
    bed_->sim().run();

    EXPECT_EQ(mirror().scrubPassCount(), 2u);
    EXPECT_GT(mirror().scrubbedBytes(), 0u);
    EXPECT_GE(mirror().integrityRepairCount(), 1u);
    EXPECT_FALSE(vol1->corrupt(64 * util::kKiB, kIo));
    EXPECT_EQ(mirror().unrecoverableCount(), 0u);
    EXPECT_EQ(mirror().failoverCount(), 0u);
}

} // namespace
} // namespace v3sim::dsa
