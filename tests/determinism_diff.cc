/**
 * @file
 * The determinism contract's end-to-end check (DESIGN.md §8): runs
 * abl_determinism twice with *different* event-tie shuffle seeds and
 * byte-compares the two artifacts. The tiebreak permutes the order
 * in which same-tick events fire; if any simulation state — any
 * metric, any counter, any note — depends on that unspecified
 * ordering, the artifacts diverge and this test prints the first
 * differing byte with surrounding context.
 *
 * Registered with ctest as `abl_determinism_diff`; CMake passes the
 * bench binary and two scratch artifact paths. CI uploads the two
 * artifacts on failure so the diff can be inspected offline.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

int
fail(const std::string &why)
{
    std::fprintf(stderr, "abl_determinism_diff: %s\n", why.c_str());
    return 1;
}

bool
runOnce(const std::string &bench, const std::string &out_path,
        const char *tie_seed)
{
    std::remove(out_path.c_str());
    const std::string command = "\"" + bench + "\" --quick --json \"" +
                                out_path + "\" --tie-seed " + tie_seed;
    std::printf("abl_determinism_diff: %s\n", command.c_str());
    std::fflush(stdout);
    return std::system(command.c_str()) == 0;
}

bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Prints the first divergence with ~60 bytes of context per side. */
void
printDiff(const std::string &a, const std::string &b)
{
    size_t i = 0;
    const size_t limit = std::min(a.size(), b.size());
    while (i < limit && a[i] == b[i])
        ++i;
    const size_t from = i > 30 ? i - 30 : 0;
    std::fprintf(stderr,
                 "first divergence at byte %zu (sizes %zu vs %zu)\n"
                 "  seed A: ...%.60s\n  seed B: ...%.60s\n",
                 i, a.size(), b.size(), a.c_str() + from,
                 b.c_str() + from);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 4) {
        return fail("usage: determinism_diff <bench-binary> "
                    "<out_a.json> <out_b.json>");
    }
    const std::string bench = argv[1];
    const std::string path_a = argv[2];
    const std::string path_b = argv[3];

    if (!runOnce(bench, path_a, "1"))
        return fail("run with --tie-seed 1 failed");
    if (!runOnce(bench, path_b, "20020817"))
        return fail("run with --tie-seed 20020817 failed");

    std::string a, b;
    if (!slurp(path_a, a))
        return fail("missing artifact " + path_a);
    if (!slurp(path_b, b))
        return fail("missing artifact " + path_b);
    if (a.empty())
        return fail("artifact " + path_a + " is empty");

    if (a != b) {
        printDiff(a, b);
        return fail("artifacts differ across tie-shuffle seeds — "
                    "some state depends on same-tick event ordering");
    }

    std::printf("abl_determinism_diff: artifacts byte-identical "
                "across tie-shuffle seeds (%zu bytes)\n",
                a.size());
    return 0;
}
