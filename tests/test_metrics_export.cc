/**
 * @file
 * Integration test for the observability spine: build a MicroRig,
 * run a little traffic, and prove one MetricRegistry snapshot covers
 * the whole stack — client, server, NIC, CPU pool, and disks — and
 * that its JSON export parses.
 */

#include <string>

#include <gtest/gtest.h>

#include "scenarios/microbench.hh"
#include "sim/metrics.hh"
#include "util/json.hh"

using namespace v3sim;
using namespace v3sim::scenarios;

namespace
{

size_t
countWithPrefix(const sim::MetricRegistry::Snapshot &snap,
                const std::string &prefix)
{
    size_t n = 0;
    for (const auto &[path, value] : snap)
        if (path.rfind(prefix, 0) == 0)
            ++n;
    return n;
}

} // namespace

TEST(MetricsExport, MicroRigSnapshotSpansSubsystems)
{
    MicroRig::Config config;
    config.backend = Backend::Kdsa;
    config.disks = 2;
    MicroRig rig(config);
    ASSERT_TRUE(rig.ready());
    rig.measureLatency(8192, true, 5, true);

    const auto snap = rig.sim().metrics().snapshot();

    // One registry, at least five subsystems represented.
    EXPECT_GT(countWithPrefix(snap, "client."), 0u);
    EXPECT_GT(countWithPrefix(snap, "server."), 0u);
    EXPECT_GT(countWithPrefix(snap, "nic."), 0u);
    EXPECT_GT(countWithPrefix(snap, "cpu."), 0u);
    EXPECT_GT(countWithPrefix(snap, "disk."), 0u);

    // The traffic actually showed up in the client path.
    const sim::Counter *ios =
        rig.sim().metrics().findCounter("client.kdsa0.ios");
    ASSERT_NE(ios, nullptr);
    EXPECT_GE(ios->value(), 5u);
    const sim::Histogram *hist = rig.sim().metrics().findHistogram(
        "client.kdsa0.latency_hist_ns");
    ASSERT_NE(hist, nullptr);
    EXPECT_GE(hist->count(), 5u);
}

TEST(MetricsExport, ToJsonParsesAndKeepsPaths)
{
    MicroRig::Config config;
    config.backend = Backend::Cdsa;
    config.disks = 2;
    MicroRig rig(config);
    ASSERT_TRUE(rig.ready());
    rig.measureLatency(4096, true, 3, true);

    const std::string json = rig.sim().metrics().toJson();
    const auto doc = util::JsonValue::parse(json);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());

    const util::JsonValue *ios = doc->find("client.cdsa0.ios");
    ASSERT_NE(ios, nullptr);
    ASSERT_NE(ios->find("count"), nullptr);
    EXPECT_GE(ios->find("count")->number, 3.0);
    EXPECT_NE(doc->find("sim.time_ns"), nullptr);
}

TEST(MetricsExport, ResetEpochZeroesTheWholeSpine)
{
    MicroRig::Config config;
    config.backend = Backend::Kdsa;
    config.disks = 2;
    MicroRig rig(config);
    ASSERT_TRUE(rig.ready());
    rig.measureLatency(8192, true, 5, true);

    sim::MetricRegistry &metrics = rig.sim().metrics();
    ASSERT_GT(metrics.findCounter("client.kdsa0.ios")->value(), 0u);
    metrics.resetEpoch();
    EXPECT_EQ(metrics.findCounter("client.kdsa0.ios")->value(), 0u);
    EXPECT_EQ(
        metrics.findHistogram("client.kdsa0.latency_hist_ns")->count(),
        0u);

    // The spine keeps working after the epoch boundary.
    rig.measureLatency(8192, true, 2, true);
    EXPECT_GE(metrics.findCounter("client.kdsa0.ios")->value(), 2u);
}
