/**
 * @file
 * Unit tests for the disk model: service times, scheduling, data
 * store integrity, and statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "disk/disk.hh"
#include "sim/simulation.hh"

namespace v3sim::disk
{
namespace
{

using sim::msecs;
using sim::Task;
using sim::Tick;

TEST(DiskSpec, RotationAndSeekSanity)
{
    const DiskSpec scsi = DiskSpec::scsi10k();
    EXPECT_EQ(scsi.rotationTime(), msecs(6)); // 10K RPM
    EXPECT_EQ(scsi.avgRotationalLatency(), msecs(3));
    EXPECT_EQ(scsi.seekTime(0), 0);
    EXPECT_EQ(scsi.seekTime(1.0), scsi.full_stroke_seek);
    EXPECT_GT(scsi.seekTime(0.5), scsi.track_to_track_seek);
    // Average seek for 10K-class drives is ~5 ms.
    EXPECT_GE(scsi.avgSeek(), msecs(4));
    EXPECT_LE(scsi.avgSeek(), msecs(6));

    const DiskSpec fc = DiskSpec::fc15k();
    EXPECT_EQ(fc.rotationTime(), msecs(4)); // 15K RPM
    EXPECT_LT(fc.avgSeek(), scsi.avgSeek());
}

TEST(Disk, RandomReadLatencyInRealisticBand)
{
    sim::Simulation sim(7);
    Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d0");
    sim::Rng rng(99);

    sim::spawn([](Disk &d, sim::Rng &r) -> Task<> {
        for (int i = 0; i < 200; ++i) {
            const uint64_t offset =
                r.uniformInt(0, (d.spec().capacity_bytes - 8192) /
                                    8192) *
                8192;
            co_await d.read(offset, 8192);
        }
    }(disk, rng));
    sim.run();

    // Random 8K reads on a 10K RPM disk: ~5-15 ms average.
    const double mean_ms = disk.serviceStats().mean() / 1e6;
    EXPECT_GE(mean_ms, 4.0);
    EXPECT_LE(mean_ms, 15.0);
    EXPECT_EQ(disk.completedCount(), 200u);
}

TEST(Disk, SequentialRunsFasterThanRandom)
{
    sim::Simulation sim(11);
    Disk seq_disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "seq");
    Disk rnd_disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "rnd");
    sim::Rng rng(5);

    sim::spawn([](Disk &d) -> Task<> {
        for (int i = 0; i < 100; ++i)
            co_await d.write(static_cast<uint64_t>(i) * 8192, 8192);
    }(seq_disk));
    sim::spawn([](Disk &d, sim::Rng &r) -> Task<> {
        for (int i = 0; i < 100; ++i) {
            const uint64_t offset =
                r.uniformInt(0, (d.spec().capacity_bytes - 8192) /
                                    8192) *
                8192;
            co_await d.write(offset, 8192);
        }
    }(rnd_disk, rng));
    sim.run();

    // Sequential log-style writes avoid seek+rotation entirely after
    // the first command.
    EXPECT_LT(seq_disk.serviceStats().mean() * 5,
              rnd_disk.serviceStats().mean());
}

TEST(Disk, ElevatorBeatsFifoOnBacklog)
{
    auto run_policy = [](SchedPolicy policy) {
        sim::Simulation sim(3);
        Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d",
                  policy);
        sim::Rng rng(42);
        int outstanding = 64;
        for (int i = 0; i < 64; ++i) {
            const uint64_t offset =
                rng.uniformInt(0, (disk.spec().capacity_bytes - 8192) /
                                      8192) *
                8192;
            disk.submit(offset, 8192, false, [&] { --outstanding; });
        }
        sim.run();
        EXPECT_EQ(outstanding, 0);
        return disk.serviceStats().mean();
    };
    EXPECT_LT(run_policy(SchedPolicy::Elevator),
              run_policy(SchedPolicy::Fifo));
}

TEST(Disk, QueueingAddsLatency)
{
    sim::Simulation sim(13);
    Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d",
              SchedPolicy::Fifo);
    int done = 0;
    for (int i = 0; i < 8; ++i)
        disk.submit(static_cast<uint64_t>(i) * 1024 * 1024 * 128, 8192,
                    false, [&] { ++done; });
    sim.run();
    EXPECT_EQ(done, 8);
    // Total latency (wait+service) exceeds pure service on average.
    EXPECT_GT(disk.latencyStats().mean(),
              disk.serviceStats().mean() * 2);
}

TEST(DiskStore, DataRoundTripsThroughDisk)
{
    sim::Simulation sim;
    Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d");
    sim::MemorySpace mem;
    const sim::Addr src = mem.allocate(8192);
    const sim::Addr dst = mem.allocate(8192);
    std::vector<uint8_t> pattern(8192);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint8_t>(i * 13);
    mem.write(src, pattern.data(), pattern.size());

    ASSERT_TRUE(disk.store().writeFrom(4096, 8192, mem, src));
    ASSERT_TRUE(disk.store().readInto(4096, 8192, mem, dst));
    std::vector<uint8_t> out(8192);
    mem.read(dst, out.data(), out.size());
    EXPECT_EQ(out, pattern);
}

TEST(DiskStore, UnwrittenSectorsReadZero)
{
    sim::Simulation sim;
    Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d");
    sim::MemorySpace mem;
    const sim::Addr dst = mem.allocate(1024);
    mem.fill(dst, 0xEE, 1024);
    ASSERT_TRUE(disk.store().readInto(0, 1024, mem, dst));
    std::vector<uint8_t> out(1024);
    mem.read(dst, out.data(), out.size());
    for (const uint8_t v : out)
        EXPECT_EQ(v, 0);
}

TEST(DiskStore, RejectsUnalignedAccess)
{
    sim::Simulation sim;
    Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d");
    sim::MemorySpace mem;
    const sim::Addr buf = mem.allocate(1024);
    EXPECT_FALSE(disk.store().readInto(100, 512, mem, buf));
    EXPECT_FALSE(disk.store().writeFrom(0, 100, mem, buf));
}

TEST(Disk, UtilizationAndReset)
{
    sim::Simulation sim;
    Disk disk(sim, DiskSpec::scsi10k(), sim.forkRng(), "d");
    sim::spawn([](Disk &d) -> Task<> {
        co_await d.read(1024 * 1024, 8192);
    }(disk));
    sim.run();
    EXPECT_GT(disk.utilization(), 0.9); // busy the whole run
    disk.resetStats();
    EXPECT_EQ(disk.completedCount(), 0u);
}

} // namespace
} // namespace v3sim::disk
