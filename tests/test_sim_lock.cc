/**
 * @file
 * Unit tests for SimLock: sync-pair costs, batch handoff, spin-time
 * accounting, emergent contention, and tie-shuffle invariance of the
 * same-tick arbitration (DESIGN.md §8.3).
 */

#include <gtest/gtest.h>

#include <vector>

#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "osmodel/sim_lock.hh"
#include "sim/simulation.hh"

namespace v3sim::osmodel
{
namespace
{

using sim::Task;
using sim::Tick;
using sim::usecs;

class SimLockTest : public ::testing::Test
{
  protected:
    SimLockTest()
        : costs_(HostCosts::midSize()),
          pool_(sim_, 8, "cpu"),
          lock_(sim_, costs_, "test")
    {}

    sim::Simulation sim_;
    HostCosts costs_;
    CpuPool pool_;
    SimLock lock_;
};

TEST_F(SimLockTest, UncontendedPairCostsOpsPlusHold)
{
    Tick finished = -1;
    sim::spawn([](CpuPool &p, SimLock &l, sim::Simulation &s,
                  Tick &out) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await l.syncPair(lease, CpuCat::Dsa);
        p.release();
        out = s.now();
    }(pool_, lock_, sim_, finished));
    sim_.run();
    EXPECT_EQ(finished, costs_.lock_acquire + costs_.lock_hold +
                            costs_.lock_release);
    EXPECT_EQ(lock_.acquisitionCount(), 1u);
    EXPECT_EQ(lock_.contendedCount(), 0u);
    // Ops charged to Lock, the critical section to the caller's
    // category.
    EXPECT_EQ(pool_.busyTime(CpuCat::Lock),
              costs_.lock_acquire + costs_.lock_release);
    EXPECT_EQ(pool_.busyTime(CpuCat::Dsa), costs_.lock_hold);
}

TEST_F(SimLockTest, SameTickContendersShareOneBatch)
{
    // All three acquire ops land on the same tick: a race whose order
    // the determinism contract leaves unspecified. The lock serves
    // them as one batch — serialized inside (sum of holds + one
    // release each) but exiting together, so no observable depends on
    // which contender "came first".
    std::vector<int> order;
    std::vector<Tick> finished;
    for (int i = 0; i < 3; ++i) {
        sim::spawn([](CpuPool &p, SimLock &l, sim::Simulation &s,
                      std::vector<int> &out, std::vector<Tick> &when,
                      int id) -> Task<> {
            CpuLease lease = co_await p.acquire();
            co_await l.syncPair(lease, CpuCat::Dsa, usecs(10));
            out.push_back(id);
            when.push_back(s.now());
            p.release();
        }(pool_, lock_, sim_, order, finished, i));
    }
    sim_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    ASSERT_EQ(finished.size(), 3u);
    const Tick batch_exit = costs_.lock_acquire + 3 * usecs(10) +
                            3 * costs_.lock_release;
    for (const Tick t : finished)
        EXPECT_EQ(t, batch_exit);
    // Every member of a multi-member batch spun.
    EXPECT_EQ(lock_.contendedCount(), 3u);
    EXPECT_GT(lock_.totalWait(), 0);
}

TEST_F(SimLockTest, DistinctTickWaitersServeFifoByArrival)
{
    // Contenders arriving on different ticks keep strict FIFO order:
    // the second arrives mid-hold of the first and exits exactly one
    // hold+release later.
    std::vector<Tick> finished;
    auto worker = [](CpuPool &p, SimLock &l, sim::Simulation &s,
                     std::vector<Tick> &when, Tick start) -> Task<> {
        co_await s.sleep(start);
        CpuLease lease = co_await p.acquire();
        co_await l.syncPair(lease, CpuCat::Dsa, usecs(10));
        when.push_back(s.now());
        p.release();
    };
    sim::spawn(worker(pool_, lock_, sim_, finished, 0));
    sim::spawn(worker(pool_, lock_, sim_, finished, usecs(1)));
    sim_.run();
    ASSERT_EQ(finished.size(), 2u);
    const Tick first = costs_.lock_acquire + usecs(10) +
                       costs_.lock_release;
    EXPECT_EQ(finished[0], first);
    EXPECT_EQ(finished[1], first + usecs(10) + costs_.lock_release);
    EXPECT_EQ(lock_.contendedCount(), 1u);
}

TEST_F(SimLockTest, BatchExitIsInvariantUnderTieShuffle)
{
    // The arbitration contract, end to end: with tie-shuffle
    // permuting the order in which same-tick acquire ops fire, every
    // contender's exit time must come out the same for any seed.
    auto measure = [&](uint64_t tie_seed) {
        sim::Simulation s;
        s.queue().setTieShuffle(tie_seed);
        CpuPool pool(s, 8, "cpu");
        SimLock lock(s, costs_, "shuffled");
        std::vector<Tick> finished(4, -1);
        for (int i = 0; i < 4; ++i) {
            sim::spawn([](sim::Simulation &ss, CpuPool &p, SimLock &l,
                          std::vector<Tick> &when, int id) -> Task<> {
                // Four independent sleeps converging on one tick:
                // each wake-up is its own future-tick (hashed,
                // shuffled) event.
                co_await ss.sleep(usecs(5));
                CpuLease lease = co_await p.acquire();
                co_await l.syncPair(lease, CpuCat::Dsa,
                                    usecs(1) * (id + 1));
                when[static_cast<size_t>(id)] = ss.now();
                p.release();
            }(s, pool, lock, finished, i));
        }
        s.run();
        return finished;
    };
    const auto a = measure(1);
    const auto b = measure(0xfeedface);
    EXPECT_EQ(a, b);
    for (const Tick t : a)
        EXPECT_GT(t, 0);
}

TEST_F(SimLockTest, SpinTimeChargedToLockCategory)
{
    for (int i = 0; i < 2; ++i) {
        sim::spawn([](CpuPool &p, SimLock &l) -> Task<> {
            CpuLease lease = co_await p.acquire();
            co_await l.syncPair(lease, CpuCat::Dsa, usecs(10));
            p.release();
        }(pool_, lock_));
    }
    sim_.run();
    // Second worker spun while the first held the lock for ~10us
    // (plus release op). All spin time is Lock-category CPU.
    EXPECT_GE(pool_.busyTime(CpuCat::Lock),
              2 * (costs_.lock_acquire + costs_.lock_release) +
                  usecs(10));
    // Both critical sections charged to Dsa.
    EXPECT_EQ(pool_.busyTime(CpuCat::Dsa), usecs(20));
}

TEST_F(SimLockTest, ContentionGrowsWithConcurrency)
{
    // Run the same per-worker workload at two concurrency levels and
    // observe superlinear total wait growth — the emergent mechanism
    // behind the paper's lock-synchronization findings.
    auto measure = [&](int workers) {
        sim::Simulation s;
        CpuPool pool(s, 32, "cpu");
        SimLock lock(s, costs_, "hot");
        for (int w = 0; w < workers; ++w) {
            sim::spawn([](sim::Simulation &ss, CpuPool &p,
                          SimLock &l) -> Task<> {
                for (int i = 0; i < 50; ++i) {
                    CpuLease lease = co_await p.acquire();
                    co_await l.syncPair(lease, CpuCat::Dsa);
                    p.release();
                    co_await ss.sleep(usecs(5));
                }
            }(s, pool, lock));
        }
        s.run();
        return lock.totalWait();
    };
    const Tick wait_low = measure(2);
    const Tick wait_high = measure(16);
    EXPECT_GT(wait_high, 8 * std::max<Tick>(wait_low, 1));
}

TEST_F(SimLockTest, LargePlatformPairsCostMore)
{
    const HostCosts mid = HostCosts::midSize();
    const HostCosts large = HostCosts::large();
    EXPECT_GT(large.lock_acquire, mid.lock_acquire);
    EXPECT_GT(large.lock_release, mid.lock_release);
    EXPECT_GT(large.probe_lock_page, mid.probe_lock_page);
}

} // namespace
} // namespace v3sim::osmodel
