/**
 * @file
 * Unit tests for SimLock: sync-pair costs, FIFO handoff, spin-time
 * accounting, and emergent contention.
 */

#include <gtest/gtest.h>

#include <vector>

#include "osmodel/cpu_pool.hh"
#include "osmodel/host_costs.hh"
#include "osmodel/sim_lock.hh"
#include "sim/simulation.hh"

namespace v3sim::osmodel
{
namespace
{

using sim::Task;
using sim::Tick;
using sim::usecs;

class SimLockTest : public ::testing::Test
{
  protected:
    SimLockTest()
        : costs_(HostCosts::midSize()),
          pool_(sim_, 8, "cpu"),
          lock_(sim_, costs_, "test")
    {}

    sim::Simulation sim_;
    HostCosts costs_;
    CpuPool pool_;
    SimLock lock_;
};

TEST_F(SimLockTest, UncontendedPairCostsOpsPlusHold)
{
    Tick finished = -1;
    sim::spawn([](CpuPool &p, SimLock &l, sim::Simulation &s,
                  Tick &out) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await l.syncPair(lease, CpuCat::Dsa);
        p.release();
        out = s.now();
    }(pool_, lock_, sim_, finished));
    sim_.run();
    EXPECT_EQ(finished, costs_.lock_acquire + costs_.lock_hold +
                            costs_.lock_release);
    EXPECT_EQ(lock_.acquisitionCount(), 1u);
    EXPECT_EQ(lock_.contendedCount(), 0u);
    // Ops charged to Lock, the critical section to the caller's
    // category.
    EXPECT_EQ(pool_.busyTime(CpuCat::Lock),
              costs_.lock_acquire + costs_.lock_release);
    EXPECT_EQ(pool_.busyTime(CpuCat::Dsa), costs_.lock_hold);
}

TEST_F(SimLockTest, ContendedWaitersSerializeFifo)
{
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        sim::spawn([](CpuPool &p, SimLock &l, std::vector<int> &out,
                      int id) -> Task<> {
            CpuLease lease = co_await p.acquire();
            co_await l.syncPair(lease, CpuCat::Dsa, usecs(10));
            out.push_back(id);
            p.release();
        }(pool_, lock_, order, i));
    }
    sim_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(lock_.contendedCount(), 2u);
    EXPECT_GT(lock_.totalWait(), 0);
}

TEST_F(SimLockTest, SpinTimeChargedToLockCategory)
{
    for (int i = 0; i < 2; ++i) {
        sim::spawn([](CpuPool &p, SimLock &l) -> Task<> {
            CpuLease lease = co_await p.acquire();
            co_await l.syncPair(lease, CpuCat::Dsa, usecs(10));
            p.release();
        }(pool_, lock_));
    }
    sim_.run();
    // Second worker spun while the first held the lock for ~10us
    // (plus release op). All spin time is Lock-category CPU.
    EXPECT_GE(pool_.busyTime(CpuCat::Lock),
              2 * (costs_.lock_acquire + costs_.lock_release) +
                  usecs(10));
    // Both critical sections charged to Dsa.
    EXPECT_EQ(pool_.busyTime(CpuCat::Dsa), usecs(20));
}

TEST_F(SimLockTest, ContentionGrowsWithConcurrency)
{
    // Run the same per-worker workload at two concurrency levels and
    // observe superlinear total wait growth — the emergent mechanism
    // behind the paper's lock-synchronization findings.
    auto measure = [&](int workers) {
        sim::Simulation s;
        CpuPool pool(s, 32, "cpu");
        SimLock lock(s, costs_, "hot");
        for (int w = 0; w < workers; ++w) {
            sim::spawn([](sim::Simulation &ss, CpuPool &p,
                          SimLock &l) -> Task<> {
                for (int i = 0; i < 50; ++i) {
                    CpuLease lease = co_await p.acquire();
                    co_await l.syncPair(lease, CpuCat::Dsa);
                    p.release();
                    co_await ss.sleep(usecs(5));
                }
            }(s, pool, lock));
        }
        s.run();
        return lock.totalWait();
    };
    const Tick wait_low = measure(2);
    const Tick wait_high = measure(16);
    EXPECT_GT(wait_high, 8 * std::max<Tick>(wait_low, 1));
}

TEST_F(SimLockTest, LargePlatformPairsCostMore)
{
    const HostCosts mid = HostCosts::midSize();
    const HostCosts large = HostCosts::large();
    EXPECT_GT(large.lock_acquire, mid.lock_acquire);
    EXPECT_GT(large.lock_release, mid.lock_release);
    EXPECT_GT(large.probe_lock_page, mid.probe_lock_page);
}

} // namespace
} // namespace v3sim::osmodel
