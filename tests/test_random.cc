/**
 * @file
 * Unit tests for the RNG and distributions: determinism, ranges, and
 * distribution moments (loose statistical bounds, fixed seeds).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hh"

namespace v3sim::sim
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = rng.uniformInt(3, 10);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 10u);
        saw_lo |= v == 3;
        saw_hi |= v == 10;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(13);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, ExponentialMeanApproximate)
{
    Rng rng(17);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(40.0);
    EXPECT_NEAR(sum / n, 40.0, 0.5);
}

TEST(Rng, NormalMomentsApproximate)
{
    Rng rng(19);
    double sum = 0, sumsq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(100.0, 15.0, /*nonneg=*/false);
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 100.0, 0.5);
    EXPECT_NEAR(std::sqrt(var), 15.0, 0.5);
}

TEST(Rng, NormalNonNegClamps)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.normal(1.0, 10.0), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.7);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.7, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    // The fork must not replay the parent stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 4);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    Rng rng(37);
    ZipfGenerator zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (const int c : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(41);
    ZipfGenerator zipf(1000, 0.99);
    int first_ten = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        first_ten += zipf.sample(rng) < 10;
    // With theta ~1 the head is heavily favored: rank<10 gets well
    // over a third of accesses across 1000 items.
    EXPECT_GT(static_cast<double>(first_ten) / n, 0.3);
}

TEST(Zipf, SamplesAlwaysInRange)
{
    Rng rng(43);
    ZipfGenerator zipf(17, 0.8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 17u);
}

} // namespace
} // namespace v3sim::sim
