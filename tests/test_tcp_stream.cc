/**
 * @file
 * Unit tests for the TCP byte-stream transport under the iSCSI rival
 * backend: segmentation and in-order delivery, Go-back-N recovery,
 * delayed cumulative ACKs, congestion backoff, taint propagation,
 * and determinism under the event-tie shuffle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/fabric.hh"
#include "net/tcp_stream.hh"
#include "sim/simulation.hh"

namespace v3sim::net
{
namespace
{

using sim::Tick;
using sim::usecs;

struct TestPayload
{
    int id;
};

/** A connected stream pair over a private fabric. */
class TcpStreamTest : public ::testing::Test
{
  protected:
    TcpStreamTest()
        : sim_(7),
          fabric_(sim_.queue()),
          a_(sim_.queue(), fabric_, sim_.metrics(), "tcp.a", "a"),
          b_(sim_.queue(), fabric_, sim_.metrics(), "tcp.b", "b")
    {
        b_.setMessageHandler([this](TcpMessage message) {
            received_.push_back(std::move(message));
        });
        b_.listen();
        sim::spawn([](TcpStream &a, TcpStream &b) -> sim::Task<> {
            co_await a.connect(b.port());
        }(a_, b_));
        sim_.run();
        EXPECT_TRUE(a_.connected());
        EXPECT_TRUE(b_.connected());
    }

    void
    send(uint64_t bytes, int id, uint64_t order_key = 0)
    {
        TcpMessage message;
        message.bytes = bytes;
        message.payload = std::make_shared<TestPayload>(
            TestPayload{id});
        message.order_key = order_key;
        a_.sendMessage(std::move(message));
    }

    int
    payloadId(const TcpMessage &message) const
    {
        return std::static_pointer_cast<TestPayload>(message.payload)
            ->id;
    }

    sim::Simulation sim_;
    Fabric fabric_;
    TcpStream a_;
    TcpStream b_;
    std::vector<TcpMessage> received_;
};

TEST_F(TcpStreamTest, InOrderDelivery)
{
    // 5000 bytes at mss 1460 = 4 segments; a second shorter message
    // rides behind it and must arrive second.
    send(5000, 1);
    send(100, 2);
    sim_.run();
    ASSERT_EQ(received_.size(), 2u);
    EXPECT_EQ(received_[0].bytes, 5000u);
    EXPECT_EQ(payloadId(received_[0]), 1);
    EXPECT_EQ(received_[1].bytes, 100u);
    EXPECT_EQ(payloadId(received_[1]), 2);
    EXPECT_EQ(a_.retransmitCount(), 0u);
    EXPECT_EQ(a_.segmentCount(5000), 4u);
}

TEST_F(TcpStreamTest, CumulativeAck)
{
    // One 4-segment message under ack_every=2: an ACK per two
    // in-order segments plus the forced ACK on the message-final
    // segment — fewer ACKs than segments, yet everything acked.
    send(4 * 1460, 1);
    sim_.run();
    ASSERT_EQ(received_.size(), 1u);
    EXPECT_EQ(b_.acksSent(), 2u);
    EXPECT_EQ(a_.sndUna(), 4u);
    EXPECT_EQ(a_.sndNxt(), 4u);
}

TEST_F(TcpStreamTest, RetransmitAfterDrop)
{
    // Drop the first full data segment once. Go-back-N resends from
    // the first unacked segment (dup-ACK fast retransmit or the RTO,
    // whichever the window allows) and the message still arrives.
    bool dropped = false;
    fabric_.setDropFilter([&](const Packet &packet) {
        if (!dropped && packet.wire_bytes > 500) {
            dropped = true;
            return true;
        }
        return false;
    });
    send(8 * 1460, 1);
    sim_.run();
    EXPECT_TRUE(dropped);
    ASSERT_EQ(received_.size(), 1u);
    EXPECT_EQ(received_[0].bytes, 8u * 1460u);
    EXPECT_GE(a_.retransmitCount(), 1u);
    EXPECT_EQ(a_.sndUna(), 8u);
}

TEST_F(TcpStreamTest, CongestionBackoff)
{
    // A loss signal halves ssthresh (to at least 2) and collapses
    // cwnd to the initial window before recovery regrows it.
    const uint32_t initial_ssthresh = a_.ssthresh();
    bool dropped = false;
    fabric_.setDropFilter([&](const Packet &packet) {
        if (!dropped && packet.wire_bytes > 500 && a_.sndNxt() > 4) {
            dropped = true;
            return true;
        }
        return false;
    });
    send(32 * 1460, 1);
    sim_.run();
    EXPECT_TRUE(dropped);
    ASSERT_EQ(received_.size(), 1u);
    EXPECT_LT(a_.ssthresh(), initial_ssthresh);
    EXPECT_GE(a_.retransmitCount(), 1u);
}

TEST_F(TcpStreamTest, RtoExponentialBackoff)
{
    // Black-hole every data segment: each back-to-back timeout must
    // double the next timer up to max_rto, so a dead or overloaded
    // peer sees exponentially spaced retransmits rather than a
    // constant-rate storm.
    int dropped = 0;
    fabric_.setDropFilter([&](const Packet &packet) {
        if (packet.wire_bytes > 500) {
            ++dropped;
            return true;
        }
        return false;
    });
    const Tick t0 = sim_.now();
    send(1000, 1);
    EXPECT_EQ(a_.currentRto(), a_.config().rto);
    // Base 2 ms doubling: timeouts fire at +2, +6, +14, +30, +62 ms.
    // By +40 ms four timer retransmits have gone out and the next
    // timer is armed at 16x the base.
    sim_.runUntil(t0 + sim::msecs(40));
    EXPECT_EQ(dropped, 5); // the original send + 4 timer resends
    EXPECT_EQ(a_.currentRto(), a_.config().rto << 4);
    // Keep losing: the effective RTO saturates at max_rto.
    sim_.runUntil(t0 + sim::msecs(400));
    EXPECT_EQ(a_.currentRto(), a_.config().max_rto);
    // Heal the path: the next timer retransmit gets through and the
    // new cumulative ACK resets the backoff to the base RTO.
    fabric_.setDropFilter(nullptr);
    sim_.run();
    ASSERT_EQ(received_.size(), 1u);
    EXPECT_EQ(a_.sndUna(), 1u);
    EXPECT_EQ(a_.currentRto(), a_.config().rto);
}

TEST_F(TcpStreamTest, TaintPropagation)
{
    // Damage one data segment in flight: the fabric delivers it with
    // the taint bit (past the weak Internet checksum), and the whole
    // reassembled message must carry the taint for the digests above.
    bool corrupted = false;
    fabric_.setCorruptFilter([&](const Packet &packet) {
        if (!corrupted && packet.wire_bytes > 500) {
            corrupted = true;
            return true;
        }
        return false;
    });
    send(4 * 1460, 1);
    send(2 * 1460, 2);
    sim_.run();
    EXPECT_TRUE(corrupted);
    ASSERT_EQ(received_.size(), 2u);
    EXPECT_TRUE(received_[0].tainted);
    EXPECT_FALSE(received_[1].tainted);
}

/** Runs four same-tick senders with distinct order_keys and returns
 *  the delivery trace (payload id + time per message). */
std::vector<std::pair<int, Tick>>
shuffledSendTrace(uint64_t tie_seed)
{
    sim::Simulation sim(7);
    sim.queue().setTieShuffle(tie_seed);
    Fabric fabric(sim.queue());
    TcpStream a(sim.queue(), fabric, sim.metrics(), "tcp.a", "a");
    TcpStream b(sim.queue(), fabric, sim.metrics(), "tcp.b", "b");
    std::vector<std::pair<int, Tick>> trace;
    b.setMessageHandler([&](TcpMessage message) {
        trace.emplace_back(
            std::static_pointer_cast<TestPayload>(message.payload)->id,
            sim.now());
    });
    b.listen();
    sim::spawn([](TcpStream &a, TcpStream &b) -> sim::Task<> {
        co_await a.connect(b.port());
    }(a, b));
    sim.run();

    // Four independent events on one tick; the tie shuffle permutes
    // the order their sendMessage() calls fire in. The final-band
    // sequencing pass must order the stream by order_key regardless.
    for (int i = 0; i < 4; ++i) {
        sim.queue().schedule(usecs(10), [&a, i] {
            TcpMessage message;
            message.bytes = 1000u * (i + 1);
            message.payload =
                std::make_shared<TestPayload>(TestPayload{i});
            message.order_key = static_cast<uint64_t>(i);
            a.sendMessage(std::move(message));
        });
    }
    sim.run();
    return trace;
}

TEST(TcpStreamDeterminism, DeterminismUnderTieShuffle)
{
    const auto trace1 = shuffledSendTrace(1);
    const auto trace2 = shuffledSendTrace(999);
    ASSERT_EQ(trace1.size(), 4u);
    EXPECT_EQ(trace1, trace2);
    // And the sequenced order is the key order, not arrival order.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(trace1[static_cast<size_t>(i)].first, i);
}

} // namespace
} // namespace v3sim::net
