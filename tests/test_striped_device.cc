/**
 * @file
 * Unit tests for StripedDevice: the block-device striping used to
 * span a database volume across multiple V3 nodes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsa/block_device.hh"
#include "sim/simulation.hh"

namespace v3sim::dsa
{
namespace
{

using sim::Addr;
using sim::Task;

/** Recording in-memory device. */
class MemDevice : public BlockDevice
{
  public:
    MemDevice(sim::Simulation &sim, sim::MemorySpace &mem,
              uint64_t capacity)
        : sim_(sim), mem_(mem), capacity_(capacity)
    {
        base_ = mem_.allocate(capacity);
    }

    Task<bool>
    read(uint64_t offset, uint64_t len, Addr buffer) override
    {
        ++reads;
        co_await sim_.sleep(sim::usecs(10));
        co_return sim::MemorySpace::copy(mem_, base_ + offset, mem_,
                                         buffer, len);
    }

    Task<bool>
    write(uint64_t offset, uint64_t len, Addr buffer) override
    {
        ++writes;
        co_await sim_.sleep(sim::usecs(10));
        co_return sim::MemorySpace::copy(mem_, buffer, mem_,
                                         base_ + offset, len);
    }

    uint64_t capacity() const override { return capacity_; }

    int reads = 0;
    int writes = 0;

  private:
    sim::Simulation &sim_;
    sim::MemorySpace &mem_;
    uint64_t capacity_;
    Addr base_;
};

class StripedDeviceTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kUnit = 64 * 1024;
    static constexpr uint64_t kChildCap = 1024 * 1024;

    StripedDeviceTest()
    {
        for (int i = 0; i < 4; ++i) {
            children_.push_back(std::make_unique<MemDevice>(
                sim_, mem_, kChildCap));
        }
        std::vector<BlockDevice *> ptrs;
        for (auto &child : children_)
            ptrs.push_back(child.get());
        striped_ = std::make_unique<StripedDevice>(ptrs, kUnit);
    }

    sim::Simulation sim_;
    sim::MemorySpace mem_;
    std::vector<std::unique_ptr<MemDevice>> children_;
    std::unique_ptr<StripedDevice> striped_;
};

TEST_F(StripedDeviceTest, CapacityIsSumOfWholeStripes)
{
    EXPECT_EQ(striped_->capacity(), 4 * kChildCap);
}

TEST_F(StripedDeviceTest, SingleUnitGoesToOneChild)
{
    const Addr buf = mem_.allocate(kUnit);
    bool ok = false;
    sim::spawn([](BlockDevice &d, Addr b, bool &out) -> Task<> {
        out = co_await d.read(0, 64 * 1024, b);
    }(*striped_, buf, ok));
    sim_.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(children_[0]->reads, 1);
    EXPECT_EQ(children_[1]->reads, 0);
}

TEST_F(StripedDeviceTest, ConsecutiveUnitsRoundRobin)
{
    const Addr buf = mem_.allocate(kUnit);
    sim::spawn([](BlockDevice &d, Addr b) -> Task<> {
        for (int i = 0; i < 8; ++i) {
            co_await d.read(static_cast<uint64_t>(i) * 64 * 1024,
                            64 * 1024, b);
        }
    }(*striped_, buf));
    sim_.run();
    for (auto &child : children_)
        EXPECT_EQ(child->reads, 2);
}

TEST_F(StripedDeviceTest, SpanningRequestFansOutInParallel)
{
    const uint64_t len = 4 * kUnit;
    const Addr buf = mem_.allocate(len);
    sim::Tick elapsed = 0;
    sim::spawn([](sim::Simulation &s, BlockDevice &d, Addr b,
                  uint64_t n, sim::Tick &out) -> Task<> {
        const sim::Tick start = s.now();
        co_await d.write(0, n, b);
        out = s.now() - start;
    }(sim_, *striped_, buf, len, elapsed));
    sim_.run();
    for (auto &child : children_)
        EXPECT_EQ(child->writes, 1);
    // Four 10us child ops in parallel, not 40us serialized.
    EXPECT_EQ(elapsed, sim::usecs(10));
}

TEST_F(StripedDeviceTest, DataIntegrityAcrossSeams)
{
    const uint64_t len = 3 * kUnit;
    const uint64_t offset = kUnit / 2; // straddles three children
    const Addr wbuf = mem_.allocate(len);
    const Addr rbuf = mem_.allocate(len);
    std::vector<uint8_t> pattern(len);
    for (size_t i = 0; i < len; ++i)
        pattern[i] = static_cast<uint8_t>(i * 37);
    mem_.write(wbuf, pattern.data(), len);

    bool wrote = false, read = false;
    sim::spawn([](BlockDevice &d, Addr w, Addr r, uint64_t off,
                  uint64_t n, bool &wo, bool &ro) -> Task<> {
        wo = co_await d.write(off, n, w);
        ro = co_await d.read(off, n, r);
    }(*striped_, wbuf, rbuf, offset, len, wrote, read));
    sim_.run();
    ASSERT_TRUE(wrote);
    ASSERT_TRUE(read);
    std::vector<uint8_t> out(len);
    mem_.read(rbuf, out.data(), len);
    EXPECT_EQ(out, pattern);
}

TEST_F(StripedDeviceTest, OutOfRangeFails)
{
    const Addr buf = mem_.allocate(kUnit);
    bool ok = true;
    sim::spawn([](BlockDevice &d, Addr b, bool &out) -> Task<> {
        out = co_await d.read(d.capacity() - 1024, 2048, b);
    }(*striped_, buf, ok));
    sim_.run();
    EXPECT_FALSE(ok);
}

} // namespace
} // namespace v3sim::dsa
