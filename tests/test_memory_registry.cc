/**
 * @file
 * Unit tests for the NIC translation table: registration costs,
 * capacity limits, batched region deregistration, and handle safety.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "vi/memory_registry.hh"

namespace v3sim::vi
{
namespace
{

using sim::usecs;

ViCosts
smallTable()
{
    ViCosts costs;
    costs.max_table_entries = 16;
    costs.max_registered_bytes = 64 * 1024;
    return costs;
}

TEST(MemoryRegistry, RegisterEightKCostsAboutFiveUs)
{
    // Paper section 3.1: registering an 8K buffer costs ~5-10 us.
    ViCosts costs;
    MemoryRegistry reg(costs);
    auto result = reg.registerMemory(0x10000, 8192, /*pre_pinned=*/false);
    ASSERT_TRUE(result.has_value());
    // 2 pages pinned + 1 table update.
    EXPECT_EQ(result->cost, 2 * costs.page_pin + costs.table_update);
    EXPECT_GE(result->cost, usecs(4));
    EXPECT_LE(result->cost, usecs(10));
}

TEST(MemoryRegistry, PrePinnedSkipsPinCost)
{
    ViCosts costs;
    MemoryRegistry reg(costs);
    auto result = reg.registerMemory(0x10000, 8192, /*pre_pinned=*/true);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->cost, costs.table_update);
}

TEST(MemoryRegistry, ConsecutiveRegistrationsUseConsecutiveSlots)
{
    ViCosts costs;
    MemoryRegistry reg(costs);
    auto r0 = reg.registerMemory(0x1000, 4096, true);
    auto r1 = reg.registerMemory(0x3000, 4096, true);
    auto r2 = reg.registerMemory(0x5000, 4096, true);
    ASSERT_TRUE(r0 && r1 && r2);
    EXPECT_EQ(r1->handle.slot, r0->handle.slot + 1);
    EXPECT_EQ(r2->handle.slot, r1->handle.slot + 1);
}

TEST(MemoryRegistry, ByteCapacityEnforced)
{
    MemoryRegistry reg(smallTable());
    auto r0 = reg.registerMemory(0x10000, 48 * 1024, true);
    ASSERT_TRUE(r0);
    auto r1 = reg.registerMemory(0x40000, 32 * 1024, true);
    EXPECT_FALSE(r1.has_value());
    EXPECT_EQ(reg.failureCount(), 1u);
    // After deregistering, it fits.
    ASSERT_TRUE(reg.deregister(r0->handle).has_value());
    EXPECT_TRUE(reg.registerMemory(0x40000, 32 * 1024, true));
}

TEST(MemoryRegistry, EntryCapacityEnforced)
{
    MemoryRegistry reg(smallTable());
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(reg.registerMemory(0x1000 + i * 0x1000, 64, true));
    EXPECT_FALSE(reg.registerMemory(0x90000, 64, true));
    EXPECT_EQ(reg.liveEntries(), 16u);
}

TEST(MemoryRegistry, DeregisterStaleHandleFails)
{
    ViCosts costs;
    MemoryRegistry reg(costs);
    auto r = reg.registerMemory(0x1000, 4096, true);
    ASSERT_TRUE(r);
    ASSERT_TRUE(reg.deregister(r->handle).has_value());
    EXPECT_FALSE(reg.deregister(r->handle).has_value()); // stale
}

TEST(MemoryRegistry, CoversValidatesRange)
{
    ViCosts costs;
    MemoryRegistry reg(costs);
    auto r = reg.registerMemory(0x1000, 8192, true);
    ASSERT_TRUE(r);
    EXPECT_TRUE(reg.covers(r->handle, 0x1000, 8192));
    EXPECT_TRUE(reg.covers(r->handle, 0x1100, 100));
    EXPECT_FALSE(reg.covers(r->handle, 0x0F00, 100));
    EXPECT_FALSE(reg.covers(r->handle, 0x1000, 8193));
}

TEST(MemoryRegistry, AnyCoversFindsRegisteredRanges)
{
    ViCosts costs;
    MemoryRegistry reg(costs);
    ASSERT_TRUE(reg.registerMemory(0x1000, 4096, true));
    auto r2 = reg.registerMemory(0x8000, 4096, true);
    ASSERT_TRUE(r2);
    EXPECT_TRUE(reg.anyCovers(0x1000, 4096));
    EXPECT_TRUE(reg.anyCovers(0x8FFF, 1));
    EXPECT_FALSE(reg.anyCovers(0x5000, 1));
    EXPECT_FALSE(reg.anyCovers(0x8000, 4097));
    ASSERT_TRUE(reg.deregister(r2->handle));
    EXPECT_FALSE(reg.anyCovers(0x8000, 1));
}

TEST(MemoryRegistry, RegionDeregFreesWholeRegionAtFixedTableCost)
{
    // Region size 4 for the test; pre-pinned buffers so the batched
    // cost is exactly one table operation regardless of entry count.
    ViCosts costs;
    MemoryRegistry reg(costs, /*region_entries=*/4);
    std::vector<RegResult> results;
    for (int i = 0; i < 4; ++i) {
        auto r = reg.registerMemory(0x1000 + i * 0x2000, 8192, true);
        ASSERT_TRUE(r);
        EXPECT_EQ(r->region, 0u);
        results.push_back(*r);
    }
    const auto dereg = reg.deregisterRegion(0);
    EXPECT_EQ(dereg.entries_freed, 4u);
    EXPECT_EQ(dereg.cost, costs.table_remove);
    EXPECT_EQ(reg.liveEntries(), 0u);
    EXPECT_EQ(reg.registeredBytes(), 0u);
    // All handles are now stale.
    for (const auto &r : results)
        EXPECT_FALSE(reg.covers(r.handle, 0x1000, 1));
}

TEST(MemoryRegistry, RegionDeregPaysUnpinForSelfPinnedEntries)
{
    ViCosts costs;
    MemoryRegistry reg(costs, 4);
    ASSERT_TRUE(reg.registerMemory(0x1000, 8192, /*pre_pinned=*/false));
    ASSERT_TRUE(reg.registerMemory(0x4000, 8192, /*pre_pinned=*/true));
    const auto dereg = reg.deregisterRegion(0);
    EXPECT_EQ(dereg.entries_freed, 2u);
    EXPECT_EQ(dereg.cost, costs.table_remove + 2 * costs.page_pin);
}

TEST(MemoryRegistry, SlotsReusedAfterRegionFree)
{
    MemoryRegistry reg(smallTable(), 4);
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(reg.registerMemory(0x1000 + i * 0x1000, 64, true));
    reg.deregisterRegion(0); // frees slots 0-3
    auto r = reg.registerMemory(0x90000, 64, true);
    ASSERT_TRUE(r);
    EXPECT_LT(r->handle.slot, 4u);
}

TEST(MemoryRegistry, StatsTrackOperations)
{
    ViCosts costs;
    MemoryRegistry reg(costs, 4);
    auto r0 = reg.registerMemory(0x1000, 4096, true);
    auto r1 = reg.registerMemory(0x3000, 4096, true);
    ASSERT_TRUE(r0 && r1);
    reg.deregister(r0->handle);
    reg.deregisterRegion(0);
    EXPECT_EQ(reg.registrationCount(), 2u);
    EXPECT_EQ(reg.deregistrationCount(), 1u);
    EXPECT_EQ(reg.regionDeregCount(), 1u);
    EXPECT_EQ(reg.peakRegisteredBytes(), 8192u);
}

TEST(MemoryRegistry, PaperScaleRegionIsThousandEntries)
{
    ViCosts costs;
    MemoryRegistry reg(costs); // default region = 1000 entries
    EXPECT_EQ(reg.regionEntries(), 1000u);
}

} // namespace
} // namespace v3sim::vi
