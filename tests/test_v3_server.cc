/**
 * @file
 * V3-server-focused tests: cache interaction of the request manager
 * (hit/miss, write-through update, sub-block and multi-block
 * requests), the cache-off path, dedup-filter pruning, and
 * concurrent-miss coalescing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"

namespace v3sim::storage
{
namespace
{

using sim::Addr;
using sim::Task;

class V3ServerTest : public ::testing::Test
{
  protected:
    explicit V3ServerTest(uint64_t cache_bytes = 2ull * 1024 * 1024)
        : sim_(21),
          fabric_(sim_.queue()),
          host_(sim_, osmodel::NodeConfig{.name = "db", .cpus = 4})
    {
        V3ServerConfig config;
        config.cache_bytes = cache_bytes;
        server_ = std::make_unique<V3Server>(sim_, fabric_, config);
        auto disks = server_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 2);
        volume_ = server_->volumeManager().addStripedVolume(
            disks, 64 * 1024);
        server_->start();
        nic_ = std::make_unique<vi::ViNic>(sim_, fabric_,
                                           host_.memory(), "nic");
        client_ = std::make_unique<dsa::DsaClient>(
            dsa::DsaImpl::Cdsa, host_, *nic_,
            server_->nic().port(), volume_);
        sim::spawn([](dsa::DsaClient &c) -> Task<> {
            co_await c.connect();
        }(*client_));
        sim_.run();
    }

    bool
    doRead(uint64_t offset, uint64_t len, Addr buffer)
    {
        bool ok = false;
        sim::spawn([](dsa::DsaClient &c, uint64_t off, uint64_t n,
                      Addr b, bool &out) -> Task<> {
            out = co_await c.read(off, n, b);
        }(*client_, offset, len, buffer, ok));
        sim_.run();
        return ok;
    }

    bool
    doWrite(uint64_t offset, uint64_t len, Addr buffer)
    {
        bool ok = false;
        sim::spawn([](dsa::DsaClient &c, uint64_t off, uint64_t n,
                      Addr b, bool &out) -> Task<> {
            out = co_await c.write(off, n, b);
        }(*client_, offset, len, buffer, ok));
        sim_.run();
        return ok;
    }

    sim::Simulation sim_;
    net::Fabric fabric_;
    osmodel::Node host_;
    std::unique_ptr<V3Server> server_;
    uint32_t volume_ = 0;
    std::unique_ptr<vi::ViNic> nic_;
    std::unique_ptr<dsa::DsaClient> client_;
};

TEST_F(V3ServerTest, RepeatReadHitsCache)
{
    const Addr buf = host_.memory().allocate(8192);
    ASSERT_TRUE(doRead(0, 8192, buf));
    const uint64_t misses = server_->cache()->misses();
    ASSERT_TRUE(doRead(0, 8192, buf));
    EXPECT_EQ(server_->cache()->misses(), misses);
    EXPECT_GE(server_->cache()->hits(), 1u);
}

TEST_F(V3ServerTest, SubBlockReadServedFromBlock)
{
    const Addr big = host_.memory().allocate(8192);
    const Addr small = host_.memory().allocate(512);
    // Load the whole block, then a 512 B sub-read must hit.
    ASSERT_TRUE(doRead(8192, 8192, big));
    const uint64_t misses = server_->cache()->misses();
    ASSERT_TRUE(doRead(8192 + 1024, 512, small));
    EXPECT_EQ(server_->cache()->misses(), misses);
}

TEST_F(V3ServerTest, MultiBlockReadCountsPerBlock)
{
    const Addr buf = host_.memory().allocate(64 * 1024);
    ASSERT_TRUE(doRead(0, 64 * 1024, buf)); // 8 blocks
    // Miss-run coalescing: the 8 cold blocks were fetched with one
    // disk run, counted as one miss event.
    EXPECT_GE(server_->cache()->misses(), 1u);
    EXPECT_EQ(server_->cache()->residentBlocks(), 8u);
    ASSERT_TRUE(doRead(0, 64 * 1024, buf));
    EXPECT_EQ(server_->cache()->hits(), 8u);
}

TEST_F(V3ServerTest, WriteUpdatesCachedBlock)
{
    const Addr wbuf = host_.memory().allocate(8192);
    const Addr rbuf = host_.memory().allocate(8192);

    // Read to populate the cache, then overwrite, then read again:
    // the second read must see the new data (write-through update)
    // and still be a cache hit.
    ASSERT_TRUE(doRead(16384, 8192, rbuf));
    host_.memory().fill(wbuf, 0x77, 8192);
    ASSERT_TRUE(doWrite(16384, 8192, wbuf));
    const uint64_t misses = server_->cache()->misses();
    ASSERT_TRUE(doRead(16384, 8192, rbuf));
    EXPECT_EQ(server_->cache()->misses(), misses);

    std::vector<uint8_t> out(8192);
    host_.memory().read(rbuf, out.data(), out.size());
    for (const uint8_t v : out)
        ASSERT_EQ(v, 0x77);
}

TEST_F(V3ServerTest, PartialBlockWriteUpdatesResidentPortion)
{
    const Addr wbuf = host_.memory().allocate(8192);
    const Addr rbuf = host_.memory().allocate(8192);
    ASSERT_TRUE(doRead(0, 8192, rbuf)); // resident, zeros
    host_.memory().fill(wbuf, 0xAA, 512);
    ASSERT_TRUE(doWrite(1024, 512, wbuf)); // middle 512 bytes
    ASSERT_TRUE(doRead(0, 8192, rbuf));    // cache hit
    std::vector<uint8_t> out(8192);
    host_.memory().read(rbuf, out.data(), out.size());
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1024], 0xAA);
    EXPECT_EQ(out[1535], 0xAA);
    EXPECT_EQ(out[1536], 0);
}

TEST_F(V3ServerTest, WritesAreDurableOnDisk)
{
    const Addr wbuf = host_.memory().allocate(8192);
    host_.memory().fill(wbuf, 0x5C, 8192);
    ASSERT_TRUE(doWrite(32768, 8192, wbuf));
    // The write committed to the spindles before completing.
    EXPECT_GE(server_->diskManager().totalCompleted(), 1u);
}

TEST_F(V3ServerTest, DedupFilterPrunedByAckWatermark)
{
    const Addr buf = host_.memory().allocate(8192);
    for (int i = 0; i < 30; ++i)
        ASSERT_TRUE(doRead(static_cast<uint64_t>(i) * 8192, 8192,
                           buf));
    // With everything completed and acked, the per-connection dedup
    // filter must not grow without bound: the next request's
    // ack_below prunes all completed sequences, leaving only the
    // most recent window.
    ASSERT_TRUE(doRead(0, 8192, buf));
    // 31 requests done; the filter holds at most the unacked tail
    // (the last request plus the hello).
    EXPECT_LE(server_->retransmitHits(), 0u);
}

class V3ServerNoCacheTest : public V3ServerTest
{
  protected:
    V3ServerNoCacheTest() : V3ServerTest(0) {}
};

TEST_F(V3ServerNoCacheTest, CacheOffPathRoundTrips)
{
    ASSERT_EQ(server_->cache(), nullptr);
    const Addr wbuf = host_.memory().allocate(16384);
    const Addr rbuf = host_.memory().allocate(16384);
    std::vector<uint8_t> pattern(16384);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint8_t>(i % 253);
    host_.memory().write(wbuf, pattern.data(), pattern.size());

    ASSERT_TRUE(doWrite(8192, 16384, wbuf));
    ASSERT_TRUE(doRead(8192, 16384, rbuf));
    std::vector<uint8_t> out(16384);
    host_.memory().read(rbuf, out.data(), out.size());
    EXPECT_EQ(out, pattern);
    // Every read went to the spindles.
    EXPECT_GE(server_->diskManager().totalCompleted(), 2u);
}

TEST_F(V3ServerNoCacheTest, UnalignedReadServedViaAlignedEnvelope)
{
    const Addr buf = host_.memory().allocate(1000);
    EXPECT_TRUE(doRead(700, 1000, buf)); // not sector aligned
}

} // namespace
} // namespace v3sim::storage
