/**
 * @file
 * Unit tests for util: size parsing/formatting and the table printer.
 */

#include <gtest/gtest.h>

#include "util/table.hh"
#include "util/units.hh"

namespace v3sim::util
{
namespace
{

TEST(Units, ParsePlainBytes)
{
    EXPECT_EQ(parseSize("512"), 512u);
    EXPECT_EQ(parseSize("0"), 0u);
}

TEST(Units, ParseSuffixes)
{
    EXPECT_EQ(parseSize("8K"), 8u * 1024);
    EXPECT_EQ(parseSize("8k"), 8u * 1024);
    EXPECT_EQ(parseSize("64K"), 64u * 1024);
    EXPECT_EQ(parseSize("4M"), 4u * 1024 * 1024);
    EXPECT_EQ(parseSize("2G"), 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(parseSize("8KB"), 8u * 1024);
    EXPECT_EQ(parseSize("8KiB"), 8u * 1024);
}

TEST(Units, ParseRejectsGarbage)
{
    EXPECT_FALSE(parseSize("").has_value());
    EXPECT_FALSE(parseSize("abc").has_value());
    EXPECT_FALSE(parseSize("8Q").has_value());
    EXPECT_FALSE(parseSize("8Kx").has_value());
}

TEST(Units, FormatRoundTrips)
{
    EXPECT_EQ(formatSize(512), "512");
    EXPECT_EQ(formatSize(8 * 1024), "8K");
    EXPECT_EQ(formatSize(128 * 1024), "128K");
    EXPECT_EQ(formatSize(4 * 1024 * 1024), "4M");
    EXPECT_EQ(formatSize(3ull * 1024 * 1024 * 1024), "3G");
    EXPECT_EQ(formatSize(1000), "1000"); // not a clean multiple
}

TEST(Units, FormatTimes)
{
    EXPECT_EQ(formatUsecs(7000), "7.0 us");
    EXPECT_EQ(formatMsecs(1500000), "1.500 ms");
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"size", "latency"});
    t.addRow({"512", "10.0"});
    t.addRow({"128K", "200.5"});
    const std::string out = t.render();
    EXPECT_NE(out.find("size"), std::string::npos);
    EXPECT_NE(out.find("128K"), std::string::npos);
    EXPECT_NE(out.find("200.5"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(static_cast<int64_t>(42)), "42");
}

TEST(Table, MissingCellsRenderEmpty)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"x"});
    const std::string out = t.render();
    EXPECT_NE(out.find('x'), std::string::npos);
}

} // namespace
} // namespace v3sim::util
