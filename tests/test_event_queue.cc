/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation, and time-bounded execution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace v3sim::sim
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(usecs(30), [&] { order.push_back(3); });
    q.schedule(usecs(10), [&] { order.push_back(1); });
    q.schedule(usecs(20), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), usecs(30));
}

TEST(EventQueue, SameTimeEventsFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(usecs(5), [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NegativeDelayClampsToNow)
{
    EventQueue q;
    q.schedule(usecs(10), [] {});
    q.run();
    Tick fired_at = -1;
    q.schedule(-usecs(5), [&] { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, usecs(10));
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue q;
    Tick fired_at = -1;
    q.scheduleAt(msecs(2), [&] { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, msecs(2));
}

TEST(EventQueue, ScheduleAtPastClampsToNow)
{
    EventQueue q;
    q.schedule(usecs(100), [] {});
    q.run();
    Tick fired_at = -1;
    q.scheduleAt(usecs(50), [&] { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, usecs(100));
}

TEST(EventQueue, EventsScheduledDuringRunAreProcessed)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.schedule(usecs(1), chain);
    };
    q.schedule(usecs(1), chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), usecs(5));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(usecs(10), [&] { ++fired; });
    q.schedule(usecs(20), [&] { ++fired; });
    q.schedule(usecs(21), [&] { ++fired; });
    q.runUntil(usecs(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), usecs(20));
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenEmpty)
{
    EventQueue q;
    q.runUntil(secs(1));
    EXPECT_EQ(q.now(), secs(1));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    auto handle = q.scheduleCancelable(usecs(10), [&] { fired = true; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    bool fired = false;
    auto handle = q.scheduleCancelable(usecs(10), [&] { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash or alter anything
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventQueue::Handle handle;
    EXPECT_FALSE(handle.pending());
    handle.cancel();
}

TEST(EventQueue, RunWithMaxEventsStopsEarly)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(usecs(i), [&] { ++fired; });
    q.run(4);
    EXPECT_EQ(fired, 4);
    q.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, FiredCountSkipsCancelled)
{
    EventQueue q;
    auto h1 = q.scheduleCancelable(usecs(1), [] {});
    q.schedule(usecs(2), [] {});
    h1.cancel();
    q.run();
    EXPECT_EQ(q.firedCount(), 1u);
}

// --- Cancellation handles (generation-counted slots) -----------------

TEST(EventQueue, HandleDestructionDoesNotCancel)
{
    EventQueue q;
    bool fired = false;
    {
        auto h = q.scheduleCancelable(usecs(1), [&] { fired = true; });
        EXPECT_TRUE(h.pending());
    } // Handle destroyed: the event must stay scheduled.
    q.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, HandleCopiesShareTheEvent)
{
    EventQueue q;
    bool fired = false;
    auto h = q.scheduleCancelable(usecs(1), [&] { fired = true; });
    auto copy = h;
    h.cancel();
    EXPECT_FALSE(copy.pending());
    q.run();
    EXPECT_FALSE(fired);
    copy.cancel(); // Stale after the pop: harmless no-op.
}

TEST(EventQueue, PendingTracksFireAndCancel)
{
    EventQueue q;
    auto fires = q.scheduleCancelable(usecs(1), [] {});
    auto cancelled = q.scheduleCancelable(usecs(2), [] {});
    EXPECT_TRUE(fires.pending());
    EXPECT_TRUE(cancelled.pending());
    cancelled.cancel();
    EXPECT_FALSE(cancelled.pending());
    q.run();
    EXPECT_FALSE(fires.pending());
    EXPECT_FALSE(cancelled.pending());
}

TEST(EventQueue, StaleHandleIsInertAfterSlotReuse)
{
    EventQueue q;
    auto h1 = q.scheduleCancelable(usecs(1), [] {});
    q.run(); // Frees the slot and bumps its generation.
    bool fired = false;
    auto h2 = q.scheduleCancelable(usecs(1), [&] { fired = true; });
    ASSERT_EQ(q.controlSlotCount(), 1u); // Same slot, new generation.
    EXPECT_FALSE(h1.pending());
    h1.cancel(); // Must not cancel the slot's new occupant.
    EXPECT_TRUE(h2.pending());
    q.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, FastPathAllocatesNoControlSlots)
{
    EventQueue q;
    for (int i = 0; i < 1000; ++i)
        q.schedule(usecs(i), [] {});
    q.scheduleAt(msecs(2), [] {});
    q.scheduleFinal([] {});
    q.run();
    // The acceptance guarantee: fire-and-forget scheduling never
    // touches a control slot.
    EXPECT_EQ(q.controlSlotCount(), 0u);

    // Cancelable events recycle one slot rather than growing the pool.
    for (int i = 0; i < 100; ++i) {
        auto h = q.scheduleCancelable(usecs(1), [] {});
        EXPECT_TRUE(h.pending());
        q.run();
    }
    EXPECT_EQ(q.controlSlotCount(), 1u);
}

// --- Ladder regions: bucket window and overflow migration ------------

namespace
{

/** Absolute tick width of the bucket window from a fresh queue:
 *  8192 buckets x 8192 ns (see EventQueue's geometry constants). */
constexpr Tick kWindow = Tick(8192) * 8192;

} // namespace

TEST(EventQueue, OverflowStartsAtTheWindowBoundary)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.scheduleAt(kWindow - 1, [&] { fired.push_back(q.now()); });
    EXPECT_EQ(q.overflowCount(), 0u); // Last in-window tick.
    q.scheduleAt(kWindow, [&] { fired.push_back(q.now()); });
    EXPECT_EQ(q.overflowCount(), 1u); // First out-of-window tick.
    q.scheduleAt(kWindow + 1, [&] { fired.push_back(q.now()); });
    EXPECT_EQ(q.overflowCount(), 2u);
    q.scheduleAt(1, [&] { fired.push_back(q.now()); });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, kWindow - 1, kWindow,
                                        kWindow + 1}));
    EXPECT_EQ(q.overflowCount(), 0u);
}

TEST(EventQueue, OverflowIsNotOvertakenByTheAdvancingWindow)
{
    // Regression: an overflow event whose bucket the advancing window
    // catches up with must still fire before any later bucket event.
    EventQueue q;
    std::vector<Tick> fired;
    const Tick far = kWindow;           // Just past the initial window.
    const Tick later = kWindow + msecs(1); // In-window once it grows.
    q.scheduleAt(far, [&] { fired.push_back(q.now()); });
    ASSERT_EQ(q.overflowCount(), 1u);
    // Fire an event near the window's end so melting it slides the
    // window past `far` and `later`.
    q.scheduleAt(kWindow - 1, [&] { fired.push_back(q.now()); });
    q.runUntil(kWindow - 1);
    // runUntil's stop-check peeked at the next event, which already
    // migrated `far` out of the overflow heap (via the bucket ring)
    // into the sorted bottom region.
    EXPECT_EQ(q.overflowCount(), 0u);
    q.scheduleAt(later, [&] { fired.push_back(q.now()); });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{kWindow - 1, far, later}));
}

TEST(EventQueue, ManyWindowRebasesKeepGlobalOrder)
{
    // Pseudorandom times across ~10 windows force repeated
    // bucket-ring wraps, overflow migrations and rebases; the firing
    // sequence must still be (when, seq)-sorted.
    EventQueue q;
    std::vector<std::pair<Tick, int>> fired;
    uint64_t x = 12345;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const Tick when = static_cast<Tick>(x % (10 * kWindow));
        q.scheduleAt(when, [&fired, &q, i] {
            fired.emplace_back(q.now(), i);
        });
    }
    q.run();
    ASSERT_EQ(fired.size(), 2000u);
    for (size_t i = 1; i < fired.size(); ++i) {
        ASSERT_LE(fired[i - 1].first, fired[i].first);
        if (fired[i - 1].first == fired[i].first) {
            ASSERT_LT(fired[i - 1].second, fired[i].second);
        }
    }
}

// --- Tie-shuffle mode (DESIGN.md §8) ---------------------------------

namespace
{

/** Schedules @p n same-tick events from distinct sources and returns
 *  the order they fired in. */
std::vector<int>
shuffledOrder(uint64_t seed, int n)
{
    EventQueue q;
    q.setTieShuffle(seed);
    std::vector<int> order;
    for (int i = 0; i < n; ++i)
        q.schedule(usecs(5), [&order, i] { order.push_back(i); });
    q.run();
    return order;
}

} // namespace

TEST(EventQueueTieShuffle, SameSeedSameOrder)
{
    const auto a = shuffledOrder(42, 32);
    const auto b = shuffledOrder(42, 32);
    EXPECT_EQ(a, b);
}

TEST(EventQueueTieShuffle, RankIsIndependentOfStorageRegion)
{
    // The shuffled rank is a pure function of (seed, seq): events
    // that migrate through the overflow heap (far-future tick) must
    // fire in the same permutation as bucket-resident ones.
    auto orderAt = [](Tick when, uint64_t seed) {
        EventQueue q;
        q.setTieShuffle(seed);
        std::vector<int> order;
        for (int i = 0; i < 16; ++i)
            q.scheduleAt(when, [&order, i] { order.push_back(i); });
        return (q.run(), order);
    };
    const auto near = orderAt(usecs(5), 99);     // Bucket region.
    const auto far = orderAt(msecs(500), 99);    // Overflow region.
    EXPECT_EQ(near, far);
    EXPECT_NE(near, orderAt(usecs(5), 100)); // ... and is a shuffle.
}

TEST(EventQueueTieShuffle, DifferentSeedsPermute)
{
    const auto a = shuffledOrder(1, 32);
    const auto b = shuffledOrder(2, 32);
    // Both are permutations of 0..31 ...
    auto sorted_a = a;
    auto sorted_b = b;
    std::sort(sorted_a.begin(), sorted_a.end());
    std::sort(sorted_b.begin(), sorted_b.end());
    std::vector<int> expect(32);
    for (int i = 0; i < 32; ++i)
        expect[static_cast<size_t>(i)] = i;
    EXPECT_EQ(sorted_a, expect);
    EXPECT_EQ(sorted_b, expect);
    // ... but different ones (32! orderings; a collision would mean
    // the seed is not reaching the rank hash).
    EXPECT_NE(a, b);
    // And neither is plain FIFO.
    EXPECT_NE(a, expect);
}

TEST(EventQueueTieShuffle, TimeOrderStillRespected)
{
    EventQueue q;
    q.setTieShuffle(7);
    Tick last = -1;
    bool monotone = true;
    for (int i = 0; i < 1000; ++i) {
        const Tick when = usecs((i * 7919) % 50);
        q.scheduleAt(when, [&, when] {
            monotone = monotone && when >= last;
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
}

TEST(EventQueueTieShuffle, ZeroDelayKeepsDocumentedOrdering)
{
    // The schedule(0) contract — "fires this tick, after
    // already-queued same-time events" — must hold under shuffle:
    // zero-delay events are continuations, not races.
    EventQueue q;
    q.setTieShuffle(99);
    std::vector<int> order;
    q.schedule(usecs(5), [&] {
        order.push_back(0);
        q.schedule(0, [&] { order.push_back(2); });
        q.schedule(0, [&] { order.push_back(3); });
    });
    q.schedule(usecs(5), [&] { order.push_back(1); });
    q.run();
    // The two top-level events may fire in either order, but both
    // precede the zero-delay continuations, which stay FIFO.
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(order[3], 3);
    EXPECT_TRUE((order[0] == 0 && order[1] == 1) ||
                (order[0] == 1 && order[1] == 0));
}

TEST(EventQueueTieShuffle, FinalBandClosesOutTheTick)
{
    // scheduleFinal: fires after every other event of the tick —
    // shuffled future-tick arrivals AND their zero-delay continuation
    // chains — with FIFO order among final events themselves. This is
    // the arbitration hook (disk pick, lock grant): by the time a
    // final event runs, the full same-tick contender set is visible.
    EventQueue q;
    q.setTieShuffle(7);
    std::vector<int> order;
    q.schedule(usecs(5), [&] {
        order.push_back(0);
        q.scheduleFinal([&] { order.push_back(10); });
        q.schedule(0, [&] { order.push_back(2); });
    });
    q.schedule(usecs(5), [&] {
        order.push_back(1);
        q.schedule(0, [&] { order.push_back(3); });
        q.scheduleFinal([&] { order.push_back(11); });
    });
    q.run();
    ASSERT_EQ(order.size(), 6u);
    // Final events last, FIFO among themselves by creation order.
    EXPECT_TRUE((order[4] == 10 && order[5] == 11) ||
                (order[4] == 11 && order[5] == 10));
    // Zero-delay continuations still precede the final band.
    EXPECT_TRUE(order[2] == 2 || order[2] == 3);
    EXPECT_TRUE(order[3] == 2 || order[3] == 3);
}

TEST(EventQueueTieShuffle, ZeroDelaySpawnedByFinalPrecedesNextFinal)
{
    // A final event's own zero-delay chains complete before the next
    // final event of the tick: one arbitration point sees the effects
    // of chains another arbitration kicked off.
    EventQueue q;
    q.setTieShuffle(5);
    std::vector<int> order;
    q.schedule(usecs(1), [&] {
        q.scheduleFinal([&] {
            order.push_back(0);
            q.schedule(0, [&] { order.push_back(1); });
        });
        q.scheduleFinal([&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, FinalBandWorksWithoutShuffle)
{
    // Same semantics in plain FIFO mode: the band, not the shuffle,
    // defines "end of tick".
    EventQueue q;
    std::vector<int> order;
    q.schedule(usecs(1), [&] {
        q.scheduleFinal([&] { order.push_back(2); });
        q.schedule(0, [&] { order.push_back(1); });
        order.push_back(0);
    });
    q.schedule(usecs(2), [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueTieShuffle, ClearRestoresFifo)
{
    EventQueue q;
    q.setTieShuffle(13);
    EXPECT_TRUE(q.tieShuffleEnabled());
    q.clearTieShuffle();
    EXPECT_FALSE(q.tieShuffleEnabled());
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(usecs(5), [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = -1;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = usecs((i * 7919) % 1000);
        q.scheduleAt(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace v3sim::sim
