/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation, and time-bounded execution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace v3sim::sim
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(usecs(30), [&] { order.push_back(3); });
    q.schedule(usecs(10), [&] { order.push_back(1); });
    q.schedule(usecs(20), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), usecs(30));
}

TEST(EventQueue, SameTimeEventsFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(usecs(5), [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NegativeDelayClampsToNow)
{
    EventQueue q;
    q.schedule(usecs(10), [] {});
    q.run();
    Tick fired_at = -1;
    q.schedule(-usecs(5), [&] { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, usecs(10));
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue q;
    Tick fired_at = -1;
    q.scheduleAt(msecs(2), [&] { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, msecs(2));
}

TEST(EventQueue, ScheduleAtPastClampsToNow)
{
    EventQueue q;
    q.schedule(usecs(100), [] {});
    q.run();
    Tick fired_at = -1;
    q.scheduleAt(usecs(50), [&] { fired_at = q.now(); });
    q.run();
    EXPECT_EQ(fired_at, usecs(100));
}

TEST(EventQueue, EventsScheduledDuringRunAreProcessed)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.schedule(usecs(1), chain);
    };
    q.schedule(usecs(1), chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), usecs(5));
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(usecs(10), [&] { ++fired; });
    q.schedule(usecs(20), [&] { ++fired; });
    q.schedule(usecs(21), [&] { ++fired; });
    q.runUntil(usecs(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), usecs(20));
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenEmpty)
{
    EventQueue q;
    q.runUntil(secs(1));
    EXPECT_EQ(q.now(), secs(1));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    auto handle = q.schedule(usecs(10), [&] { fired = true; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    bool fired = false;
    auto handle = q.schedule(usecs(10), [&] { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash or alter anything
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventQueue::Handle handle;
    EXPECT_FALSE(handle.pending());
    handle.cancel();
}

TEST(EventQueue, RunWithMaxEventsStopsEarly)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.schedule(usecs(i), [&] { ++fired; });
    q.run(4);
    EXPECT_EQ(fired, 4);
    q.run();
    EXPECT_EQ(fired, 10);
}

TEST(EventQueue, FiredCountSkipsCancelled)
{
    EventQueue q;
    auto h1 = q.schedule(usecs(1), [] {});
    q.schedule(usecs(2), [] {});
    h1.cancel();
    q.run();
    EXPECT_EQ(q.firedCount(), 1u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = -1;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = usecs((i * 7919) % 1000);
        q.scheduleAt(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace v3sim::sim
