/**
 * @file
 * Unit tests for RAID volumes: mapping, parallelism, data integrity
 * across concatenation, striping and mirroring.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "disk/volume.hh"
#include "sim/simulation.hh"

namespace v3sim::disk
{
namespace
{

using sim::Task;
using sim::Tick;

class VolumeTest : public ::testing::Test
{
  protected:
    VolumeTest() : sim_(17)
    {
        for (int i = 0; i < 4; ++i) {
            disks_.push_back(std::make_unique<Disk>(
                sim_, DiskSpec::scsi10k(), sim_.forkRng(),
                "d" + std::to_string(i)));
            single_.push_back(
                std::make_unique<SingleDiskVolume>(*disks_.back()));
        }
        buf_ = mem_.allocate(kBufLen);
        out_ = mem_.allocate(kBufLen);
        pattern_.resize(kBufLen);
        for (size_t i = 0; i < kBufLen; ++i)
            pattern_[i] = static_cast<uint8_t>((i * 7) & 0xFF);
        mem_.write(buf_, pattern_.data(), kBufLen);
    }

    std::vector<Volume *>
    volumes(int n)
    {
        std::vector<Volume *> v;
        for (int i = 0; i < n; ++i)
            v.push_back(single_[static_cast<size_t>(i)].get());
        return v;
    }

    /** Writes then reads back through @p volume; checks the data. */
    void
    roundTrip(Volume &volume, uint64_t offset, uint64_t len)
    {
        bool write_ok = false, read_ok = false;
        sim::spawn([](Volume &v, uint64_t off, uint64_t n,
                      sim::MemorySpace &mem, sim::Addr src,
                      sim::Addr dst, bool &wok, bool &rok) -> Task<> {
            wok = co_await v.write(off, n, mem, src);
            rok = co_await v.read(off, n, mem, dst);
        }(volume, offset, len, mem_, buf_, out_, write_ok, read_ok));
        sim_.run();
        ASSERT_TRUE(write_ok);
        ASSERT_TRUE(read_ok);
        std::vector<uint8_t> out(len);
        mem_.read(out_, out.data(), len);
        for (uint64_t i = 0; i < len; ++i)
            ASSERT_EQ(out[i], pattern_[i]) << "mismatch at " << i;
    }

    static constexpr uint64_t kBufLen = 256 * 1024;

    sim::Simulation sim_;
    sim::MemorySpace mem_;
    std::vector<std::unique_ptr<Disk>> disks_;
    std::vector<std::unique_ptr<SingleDiskVolume>> single_;
    sim::Addr buf_, out_;
    std::vector<uint8_t> pattern_;
};

TEST_F(VolumeTest, SingleDiskRoundTrip)
{
    roundTrip(*single_[0], 8192, 8192);
}

TEST_F(VolumeTest, SingleDiskRejectsOutOfRange)
{
    bool ok = true;
    sim::spawn([](Volume &v, sim::MemorySpace &mem, sim::Addr buf,
                  bool &result) -> Task<> {
        result = co_await v.read(v.capacity() - 512, 1024, mem, buf);
    }(*single_[0], mem_, out_, ok));
    sim_.run();
    EXPECT_FALSE(ok);
}

TEST_F(VolumeTest, ConcatCapacityAndMapping)
{
    ConcatVolume concat(volumes(3));
    EXPECT_EQ(concat.capacity(), 3 * single_[0]->capacity());
    // A read spanning the seam between child 0 and child 1.
    roundTrip(concat, single_[0]->capacity() - 8192, 16384);
    // The spanning op touched both disks.
    EXPECT_GT(disks_[0]->completedCount(), 0u);
    EXPECT_GT(disks_[1]->completedCount(), 0u);
}

TEST_F(VolumeTest, StripeDistributesAcrossDisks)
{
    StripeVolume stripe(volumes(4), 64 * 1024);
    roundTrip(stripe, 0, 256 * 1024); // exactly one unit per disk
    for (const auto &disk : disks_)
        EXPECT_EQ(disk->completedCount(), 2u); // 1 write + 1 read
}

TEST_F(VolumeTest, StripeParallelismBeatsSingleDisk)
{
    // 256K across 4 disks in parallel vs 256K on one disk.
    StripeVolume stripe(volumes(4), 64 * 1024);
    Tick striped_time = 0, single_time = 0;

    sim::spawn([](Volume &v, sim::MemorySpace &mem, sim::Addr buf,
                  sim::Simulation &s, Tick &out) -> Task<> {
        const Tick start = s.now();
        co_await v.write(0, 256 * 1024, mem, buf);
        out = s.now() - start;
    }(stripe, mem_, buf_, sim_, striped_time));
    sim_.run();

    sim::spawn([](Volume &v, sim::MemorySpace &mem, sim::Addr buf,
                  sim::Simulation &s, Tick &out) -> Task<> {
        const Tick start = s.now();
        co_await v.write(0, 256 * 1024, mem, buf);
        out = s.now() - start;
    }(*single_[3], mem_, buf_, sim_, single_time));
    sim_.run();

    EXPECT_LT(striped_time, single_time);
}

TEST_F(VolumeTest, StripeUnalignedSpanRoundTrip)
{
    StripeVolume stripe(volumes(3), 64 * 1024);
    // Start mid-unit, cross several units.
    roundTrip(stripe, 32 * 1024 + 512, 150 * 1024);
}

TEST_F(VolumeTest, MirrorWritesAllReplicas)
{
    MirrorVolume mirror(volumes(2));
    EXPECT_EQ(mirror.capacity(), single_[0]->capacity());
    roundTrip(mirror, 4096, 8192);
    // Write hit both disks; the read hit exactly one.
    const uint64_t total =
        disks_[0]->completedCount() + disks_[1]->completedCount();
    EXPECT_EQ(total, 3u);
}

TEST_F(VolumeTest, MirrorReadsRoundRobin)
{
    MirrorVolume mirror(volumes(2));
    sim::spawn([](Volume &v, sim::MemorySpace &mem,
                  sim::Addr buf) -> Task<> {
        for (int i = 0; i < 4; ++i)
            co_await v.read(0, 8192, mem, buf);
    }(mirror, mem_, out_));
    sim_.run();
    EXPECT_EQ(disks_[0]->completedCount(), 2u);
    EXPECT_EQ(disks_[1]->completedCount(), 2u);
}

TEST_F(VolumeTest, Raid10Composition)
{
    // Stripe over two mirrored pairs: RAID-10.
    MirrorVolume pair_a({single_[0].get(), single_[1].get()});
    MirrorVolume pair_b({single_[2].get(), single_[3].get()});
    StripeVolume raid10({&pair_a, &pair_b}, 64 * 1024);
    roundTrip(raid10, 0, 128 * 1024);
    // The write fanned out to all four spindles.
    for (const auto &disk : disks_)
        EXPECT_GE(disk->completedCount(), 1u);
}

} // namespace
} // namespace v3sim::disk
