/**
 * @file
 * Unit tests for the VI completion queue: polling, one-shot arming,
 * the awaitable next(), and statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"
#include "vi/completion_queue.hh"

namespace v3sim::vi
{
namespace
{

WorkCompletion
completionWithCookie(uint64_t cookie)
{
    WorkCompletion completion;
    completion.cookie = cookie;
    return completion;
}

TEST(CompletionQueue, PollFifoOrder)
{
    CompletionQueue cq;
    EXPECT_TRUE(cq.empty());
    cq.push(completionWithCookie(1));
    cq.push(completionWithCookie(2));
    EXPECT_EQ(cq.depth(), 2u);
    EXPECT_EQ(cq.poll()->cookie, 1u);
    EXPECT_EQ(cq.poll()->cookie, 2u);
    EXPECT_FALSE(cq.poll().has_value());
}

TEST(CompletionQueue, ArmFiresOnceThenRequiresRearm)
{
    CompletionQueue cq;
    int interrupts = 0;
    cq.setInterruptSink([&] { ++interrupts; });

    cq.push(completionWithCookie(1)); // not armed: silent
    EXPECT_EQ(interrupts, 0);

    cq.arm();
    cq.push(completionWithCookie(2));
    EXPECT_EQ(interrupts, 1);
    cq.push(completionWithCookie(3)); // disarmed again
    EXPECT_EQ(interrupts, 1);

    cq.arm();
    cq.push(completionWithCookie(4));
    EXPECT_EQ(interrupts, 2);
    EXPECT_EQ(cq.interruptCount(), 2u);
    EXPECT_EQ(cq.pushCount(), 4u);
}

TEST(CompletionQueue, DisarmCancelsPendingArm)
{
    CompletionQueue cq;
    int interrupts = 0;
    cq.setInterruptSink([&] { ++interrupts; });
    cq.arm();
    EXPECT_TRUE(cq.armed());
    cq.disarm();
    cq.push(completionWithCookie(1));
    EXPECT_EQ(interrupts, 0);
}

TEST(CompletionQueue, NextAwaitsPush)
{
    sim::Simulation sim;
    CompletionQueue cq;
    std::vector<uint64_t> got;
    sim::spawn([](CompletionQueue &q,
                  std::vector<uint64_t> &out) -> sim::Task<> {
        for (int i = 0; i < 3; ++i) {
            const WorkCompletion completion = co_await q.next();
            out.push_back(completion.cookie);
        }
    }(cq, got));
    sim.run();
    EXPECT_TRUE(got.empty());

    sim.queue().schedule(sim::usecs(1),
                         [&] { cq.push(completionWithCookie(7)); });
    sim.queue().schedule(sim::usecs(2), [&] {
        cq.push(completionWithCookie(8));
        cq.push(completionWithCookie(9));
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<uint64_t>{7, 8, 9}));
    EXPECT_TRUE(cq.empty());
}

TEST(CompletionQueue, NextConsumesBacklogWithoutWaiting)
{
    sim::Simulation sim;
    CompletionQueue cq;
    cq.push(completionWithCookie(5));
    uint64_t got = 0;
    sim::spawn([](CompletionQueue &q, uint64_t &out) -> sim::Task<> {
        const WorkCompletion completion = co_await q.next();
        out = completion.cookie;
    }(cq, got));
    sim.run();
    EXPECT_EQ(got, 5u);
}

TEST(CompletionQueue, WaiterBypassesInterrupt)
{
    sim::Simulation sim;
    CompletionQueue cq;
    int interrupts = 0;
    cq.setInterruptSink([&] { ++interrupts; });
    cq.arm();
    bool resumed = false;
    sim::spawn([](CompletionQueue &q, bool &out) -> sim::Task<> {
        co_await q.next();
        out = true;
    }(cq, resumed));
    sim.run();
    cq.push(completionWithCookie(1));
    // The dedicated service loop got the completion; no interrupt
    // fired (the V3 server's polling mode).
    EXPECT_TRUE(resumed);
    EXPECT_EQ(interrupts, 0);
}

} // namespace
} // namespace v3sim::vi
