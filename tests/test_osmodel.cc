/**
 * @file
 * Unit tests for interrupt delivery, the kernel I/O-manager path,
 * AWE allocation, and Node wiring.
 */

#include <gtest/gtest.h>

#include <vector>

#include "osmodel/node.hh"
#include "sim/simulation.hh"

namespace v3sim::osmodel
{
namespace
{

using sim::Task;
using sim::Tick;
using sim::usecs;

TEST(InterruptController, ChargesInterruptCostToKernel)
{
    sim::Simulation sim;
    Node node(sim, NodeConfig{.name = "host", .cpus = 2});
    bool handled = false;
    node.interrupts().raise([&](CpuLease lease) -> Task<> {
        co_await lease.run(usecs(1), CpuCat::Vi);
        handled = true;
    });
    sim.run();
    EXPECT_TRUE(handled);
    EXPECT_EQ(node.interrupts().interruptCount(), 1u);
    EXPECT_EQ(node.cpus().busyTime(CpuCat::Kernel),
              node.costs().interrupt);
    EXPECT_EQ(node.cpus().busyTime(CpuCat::Vi), usecs(1));
}

TEST(InterruptController, PreemptsQueuedNormalWork)
{
    sim::Simulation sim;
    Node node(sim, NodeConfig{.name = "host", .cpus = 1});
    std::vector<std::string> order;

    // Fill the only CPU with a worker, queue another, then raise an
    // interrupt: the interrupt must run before the queued worker.
    auto worker = [](Node &n, std::vector<std::string> &out,
                     std::string name) -> Task<> {
        CpuLease lease = co_await n.cpus().acquire();
        co_await lease.run(usecs(20), CpuCat::Sql);
        n.cpus().release();
        out.push_back(name);
    };
    sim::spawn(worker(node, order, "w1"));
    sim::spawn(worker(node, order, "w2"));
    sim.queue().schedule(usecs(1), [&] {
        node.interrupts().raise(
            [&order](CpuLease) -> Task<> {
                order.push_back("intr");
                co_return;
            });
    });
    sim.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"w1", "intr", "w2"}));
}

TEST(IoManager, IssueAndCompleteChargeKernelAndLock)
{
    sim::Simulation sim;
    Node node(sim, NodeConfig{.name = "host", .cpus = 4});
    sim::spawn([](Node &n) -> Task<> {
        CpuLease lease = co_await n.cpus().acquire();
        co_await n.ioManager().issueRequest(lease, 2, true);
        co_await n.ioManager().completeRequest(lease, 2, true);
        n.cpus().release();
    }(node));
    sim.run();

    const HostCosts &c = node.costs();
    const Tick kernel_expected =
        c.syscall + c.irp_issue + c.irp_complete +
        4 * c.probe_lock_page + // pin 2 + unpin 2
        4 * c.lock_hold +       // 4 sync pairs' critical sections
        c.context_switch;
    EXPECT_EQ(node.cpus().busyTime(CpuCat::Kernel), kernel_expected);
    EXPECT_EQ(node.cpus().busyTime(CpuCat::Lock),
              4 * (c.lock_acquire + c.lock_release));
    EXPECT_EQ(node.ioManager().requestCount(), 1u);
}

TEST(IoManager, PinningIsOptional)
{
    sim::Simulation sim;
    Node node(sim, NodeConfig{.name = "host", .cpus = 1});
    sim::spawn([](Node &n) -> Task<> {
        CpuLease lease = co_await n.cpus().acquire();
        co_await n.ioManager().issueRequest(lease, 16, false);
        n.cpus().release();
    }(node));
    sim.run();
    const HostCosts &c = node.costs();
    EXPECT_EQ(node.cpus().busyTime(CpuCat::Kernel),
              c.syscall + c.irp_issue + 2 * c.lock_hold);
}

TEST(Awe, AllocationsArePinned)
{
    sim::Simulation sim;
    Node node(sim, NodeConfig{.name = "host"});
    const sim::Addr a = node.awe().allocate(64 * 1024);
    ASSERT_NE(a, sim::kNullAddr);
    EXPECT_TRUE(node.awe().isPinned(a));
    EXPECT_TRUE(node.awe().isPinned(a + 64 * 1024 - 1));
    EXPECT_FALSE(node.awe().isPinned(a + 64 * 1024));

    // Non-AWE allocations are not pinned.
    const sim::Addr b = node.memory().allocate(4096);
    EXPECT_FALSE(node.awe().isPinned(b));
    EXPECT_EQ(node.awe().totalBytes(), 64u * 1024);
}

TEST(Node, PhantomMemoryConfig)
{
    sim::Simulation sim;
    Node node(sim,
              NodeConfig{.name = "big", .phantom_memory = true});
    EXPECT_TRUE(node.memory().phantom());
}

} // namespace
} // namespace v3sim::osmodel
