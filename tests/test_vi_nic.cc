/**
 * @file
 * Unit tests for the VI NIC/endpoint model: connection handshake,
 * send/receive with data integrity, RDMA write (with and without
 * immediate), fragmentation at the cLan packet size, receive
 * overruns, protection errors, disconnect and fault injection, and
 * the 7 us one-way latency calibration.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/memory.hh"
#include "sim/simulation.hh"
#include "util/units.hh"
#include "vi/vi_nic.hh"

namespace v3sim::vi
{
namespace
{

using sim::Addr;
using sim::Tick;
using sim::usecs;

/** Two hosts with one NIC each, pre-wired for client/server tests. */
class ViNicTest : public ::testing::Test
{
  protected:
    ViNicTest()
        : client_mem_(false, "client"),
          server_mem_(false, "server"),
          fabric_(sim_.queue()),
          client_nic_(sim_, fabric_, client_mem_, "cnic"),
          server_nic_(sim_, fabric_, server_mem_, "snic"),
          client_scq_("c.scq"),
          client_rcq_("c.rcq"),
          server_scq_("s.scq"),
          server_rcq_("s.rcq")
    {
        client_ep_ = &client_nic_.createEndpoint(&client_scq_,
                                                 &client_rcq_);
        server_ep_ = &server_nic_.createEndpoint(&server_scq_,
                                                 &server_rcq_);
        server_nic_.setAcceptHandler(
            [this](net::PortId, EndpointId) { return server_ep_; });
    }

    /** Runs the connect handshake to completion. */
    void
    connectPair()
    {
        client_nic_.connect(*client_ep_, server_nic_.port());
        sim_.run();
        ASSERT_EQ(client_ep_->state(), EndpointState::Connected);
        ASSERT_EQ(server_ep_->state(), EndpointState::Connected);
    }

    /** Allocates and registers a buffer; returns {addr, handle}. */
    std::pair<Addr, MemHandle>
    makeBuffer(ViNic &nic, sim::MemorySpace &mem, uint64_t len)
    {
        const Addr addr = mem.allocate(len);
        auto reg = nic.registry().registerMemory(addr, len, true);
        EXPECT_TRUE(reg.has_value());
        return {addr, reg->handle};
    }

    sim::Simulation sim_;
    sim::MemorySpace client_mem_;
    sim::MemorySpace server_mem_;
    net::Fabric fabric_;
    ViNic client_nic_;
    ViNic server_nic_;
    CompletionQueue client_scq_, client_rcq_;
    CompletionQueue server_scq_, server_rcq_;
    ViEndpoint *client_ep_ = nullptr;
    ViEndpoint *server_ep_ = nullptr;
};

TEST_F(ViNicTest, ConnectHandshake)
{
    std::vector<EndpointState> client_states;
    client_ep_->setStateHandler(
        [&](EndpointState s) { client_states.push_back(s); });
    connectPair();
    ASSERT_EQ(client_states.size(), 2u);
    EXPECT_EQ(client_states[0], EndpointState::Connecting);
    EXPECT_EQ(client_states[1], EndpointState::Connected);
    EXPECT_EQ(client_ep_->remoteEndpoint(), server_ep_->id());
    EXPECT_EQ(server_ep_->remoteEndpoint(), client_ep_->id());
}

TEST_F(ViNicTest, ConnectRefusedWithoutAcceptor)
{
    server_nic_.setAcceptHandler(nullptr);
    client_nic_.connect(*client_ep_, server_nic_.port());
    sim_.run();
    EXPECT_EQ(client_ep_->state(), EndpointState::Error);
}

TEST_F(ViNicTest, SendDeliversDataToPostedRecv)
{
    connectPair();
    const std::string text = "block request payload";
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 256);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 256);
    client_mem_.write(src, text.data(), text.size());

    WorkDescriptor recv;
    recv.cookie = 77;
    recv.local_addr = dst;
    recv.len = 256;
    ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));

    WorkDescriptor send;
    send.cookie = 55;
    send.local_addr = src;
    send.len = text.size();
    ASSERT_TRUE(client_nic_.postSend(*client_ep_, send, src_h));
    sim_.run();

    // Receiver got the data and a completion with its cookie.
    auto completion = server_rcq_.poll();
    ASSERT_TRUE(completion.has_value());
    EXPECT_EQ(completion->status, WorkStatus::Ok);
    EXPECT_EQ(completion->cookie, 77u);
    EXPECT_EQ(completion->len, text.size());
    std::string out(text.size(), '\0');
    server_mem_.read(dst, out.data(), out.size());
    EXPECT_EQ(out, text);

    // Sender got a local send completion.
    auto sc = client_scq_.poll();
    ASSERT_TRUE(sc.has_value());
    EXPECT_EQ(sc->cookie, 55u);
    EXPECT_EQ(sc->status, WorkStatus::Ok);
}

TEST_F(ViNicTest, SendWithoutRecvBreaksConnection)
{
    connectPair();
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    WorkDescriptor send;
    send.local_addr = src;
    send.len = 64;
    ASSERT_TRUE(client_nic_.postSend(*client_ep_, send, src_h));
    sim_.run();
    EXPECT_EQ(server_nic_.recvOverruns(), 1u);
    EXPECT_EQ(server_ep_->state(), EndpointState::Error);
    // The peer learns about it via the disconnect notification.
    EXPECT_EQ(client_ep_->state(), EndpointState::Error);
}

TEST_F(ViNicTest, SendLargerThanRecvBufferBreaksConnection)
{
    connectPair();
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 1024);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 64);
    WorkDescriptor recv;
    recv.local_addr = dst;
    recv.len = 64;
    ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));
    WorkDescriptor send;
    send.local_addr = src;
    send.len = 1024;
    ASSERT_TRUE(client_nic_.postSend(*client_ep_, send, src_h));
    sim_.run();
    EXPECT_EQ(server_ep_->state(), EndpointState::Error);
}

TEST_F(ViNicTest, RdmaWritePlacesDataWithoutRemoteCompletion)
{
    connectPair();
    const std::string text = "rdma payload";
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 256);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 256);
    (void)dst_h;
    client_mem_.write(src, text.data(), text.size());

    WorkDescriptor rdma;
    rdma.cookie = 5;
    rdma.local_addr = src;
    rdma.len = text.size();
    rdma.remote_addr = dst;
    ASSERT_TRUE(client_nic_.postRdmaWrite(*client_ep_, rdma, src_h));
    sim_.run();

    std::string out(text.size(), '\0');
    server_mem_.read(dst, out.data(), out.size());
    EXPECT_EQ(out, text);
    // Invisible to the remote CPU: no recv completion, no interrupt.
    EXPECT_TRUE(server_rcq_.empty());
    EXPECT_EQ(server_rcq_.interruptCount(), 0u);
    // Local completion still delivered.
    auto sc = client_scq_.poll();
    ASSERT_TRUE(sc.has_value());
    EXPECT_EQ(sc->type, WorkType::RdmaWrite);
}

TEST_F(ViNicTest, RdmaWriteWithImmediateConsumesRecvDescriptor)
{
    connectPair();
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 64);
    WorkDescriptor recv;
    recv.cookie = 31;
    recv.local_addr = dst;
    recv.len = 64;
    ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));

    WorkDescriptor rdma;
    rdma.local_addr = src;
    rdma.len = 64;
    rdma.remote_addr = dst;
    rdma.has_immediate = true;
    rdma.immediate = 0xABCD;
    ASSERT_TRUE(client_nic_.postRdmaWrite(*client_ep_, rdma, src_h));
    sim_.run();

    auto completion = server_rcq_.poll();
    ASSERT_TRUE(completion.has_value());
    EXPECT_TRUE(completion->has_immediate);
    EXPECT_EQ(completion->immediate, 0xABCDu);
    EXPECT_EQ(completion->cookie, 31u);
    EXPECT_EQ(server_ep_->postedRecvCount(), 0u);
}

TEST_F(ViNicTest, RdmaToUnregisteredMemoryBreaksConnection)
{
    connectPair();
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    const Addr unregistered = server_mem_.allocate(64);

    WorkDescriptor rdma;
    rdma.local_addr = src;
    rdma.len = 64;
    rdma.remote_addr = unregistered;
    ASSERT_TRUE(client_nic_.postRdmaWrite(*client_ep_, rdma, src_h));
    sim_.run();
    EXPECT_EQ(server_nic_.protectionErrors(), 1u);
    EXPECT_EQ(server_ep_->state(), EndpointState::Error);
}

TEST_F(ViNicTest, PostOnUnregisteredBufferRejected)
{
    connectPair();
    const Addr addr = client_mem_.allocate(64);
    WorkDescriptor send;
    send.local_addr = addr;
    send.len = 64;
    EXPECT_FALSE(client_nic_.postSend(*client_ep_, send, MemHandle{}));
}

TEST_F(ViNicTest, LargeTransferFragmentsAtClanPacketSize)
{
    connectPair();
    // Paper section 5.3: a 128 KB transfer needs three RDMAs because
    // the cLan packet is 64K - 64 bytes.
    const uint64_t len = 128 * util::kKiB;
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, len);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, len);
    (void)dst_h;
    std::vector<uint8_t> pattern(len);
    for (size_t i = 0; i < len; ++i)
        pattern[i] = static_cast<uint8_t>(i % 251);
    client_mem_.write(src, pattern.data(), len);

    const uint64_t packets_before = client_nic_.packetsSent();
    WorkDescriptor rdma;
    rdma.local_addr = src;
    rdma.len = len;
    rdma.remote_addr = dst;
    ASSERT_TRUE(client_nic_.postRdmaWrite(*client_ep_, rdma, src_h));
    sim_.run();
    EXPECT_EQ(client_nic_.packetsSent() - packets_before, 3u);

    std::vector<uint8_t> out(len);
    server_mem_.read(dst, out.data(), len);
    EXPECT_EQ(out, pattern);
}

TEST_F(ViNicTest, OneWaySmallMessageLatencyNearSevenMicroseconds)
{
    // Paper section 4: "the one-way latency for a 64-bytes message is
    // about 7 us". Our NIC+fabric pipeline plus the ~0.7 us doorbell
    // the host layer charges must land in that neighborhood.
    connectPair();
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 64);
    WorkDescriptor recv;
    recv.local_addr = dst;
    recv.len = 64;
    ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));

    const Tick start = sim_.now();
    WorkDescriptor send;
    send.local_addr = src;
    send.len = 64;
    ASSERT_TRUE(client_nic_.postSend(*client_ep_, send, src_h));
    sim_.run();
    ASSERT_FALSE(server_rcq_.empty());
    const Tick elapsed = sim_.now() - start;
    const Tick with_doorbell =
        elapsed + client_nic_.costs().doorbell;
    EXPECT_GE(with_doorbell, usecs(5));
    EXPECT_LE(with_doorbell, usecs(9));
}

TEST_F(ViNicTest, ArmedRecvCqFiresInterruptOnce)
{
    connectPair();
    int interrupts = 0;
    server_rcq_.setInterruptSink([&] { ++interrupts; });
    server_rcq_.arm();

    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 256);
    for (int i = 0; i < 2; ++i) {
        WorkDescriptor recv;
        recv.local_addr = dst;
        recv.len = 256;
        ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));
    }
    for (int i = 0; i < 2; ++i) {
        WorkDescriptor send;
        send.local_addr = src;
        send.len = 64;
        ASSERT_TRUE(client_nic_.postSend(*client_ep_, send, src_h));
    }
    sim_.run();
    // One-shot arming: a single interrupt despite two completions.
    EXPECT_EQ(interrupts, 1);
    EXPECT_EQ(server_rcq_.depth(), 2u);
}

TEST_F(ViNicTest, DisconnectFlushesPostedRecvs)
{
    connectPair();
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 64);
    WorkDescriptor recv;
    recv.cookie = 9;
    recv.local_addr = dst;
    recv.len = 64;
    ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));

    server_nic_.disconnect(*server_ep_);
    sim_.run();
    EXPECT_EQ(server_ep_->state(), EndpointState::Closed);
    auto completion = server_rcq_.poll();
    ASSERT_TRUE(completion.has_value());
    EXPECT_EQ(completion->status, WorkStatus::Flushed);
    EXPECT_EQ(completion->cookie, 9u);
    // Peer observes the disconnect as an error.
    EXPECT_EQ(client_ep_->state(), EndpointState::Error);
}

TEST_F(ViNicTest, BreakConnectionIsSilentToPeer)
{
    connectPair();
    client_nic_.breakConnection(*client_ep_);
    sim_.run();
    EXPECT_EQ(client_ep_->state(), EndpointState::Error);
    // No notification was sent: the peer still believes it is
    // connected (it will find out via timeouts at the DSA layer).
    EXPECT_EQ(server_ep_->state(), EndpointState::Connected);
}

TEST_F(ViNicTest, PostOnErroredEndpointRejected)
{
    connectPair();
    client_nic_.breakConnection(*client_ep_);
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    WorkDescriptor send;
    send.local_addr = src;
    send.len = 64;
    EXPECT_FALSE(client_nic_.postSend(*client_ep_, send, src_h));
    EXPECT_FALSE(client_nic_.postRecv(*client_ep_, send, src_h));
}

TEST_F(ViNicTest, RdmaReadPullsRemoteDataWithoutRemoteCpu)
{
    connectPair();
    const std::string text = "server-resident block";
    auto [dst, dst_h] = makeBuffer(client_nic_, client_mem_, 256);
    (void)dst_h;
    auto [src, src_h] = makeBuffer(server_nic_, server_mem_, 256);
    (void)src_h;
    server_mem_.write(src, text.data(), text.size());

    vi::WorkDescriptor read;
    read.cookie = 99;
    read.local_addr = dst;
    read.len = text.size();
    read.remote_addr = src;
    ASSERT_TRUE(client_nic_.postRdmaRead(*client_ep_, read,
                                         client_nic_.registry()
                                             .registerMemory(dst, 256,
                                                             true)
                                             ->handle));
    sim_.run();

    std::string out(text.size(), '\0');
    client_mem_.read(dst, out.data(), out.size());
    EXPECT_EQ(out, text);
    // Requester's completion arrives on its receive CQ.
    auto completion = client_rcq_.poll();
    ASSERT_TRUE(completion.has_value());
    EXPECT_EQ(completion->type, WorkType::RdmaRead);
    EXPECT_EQ(completion->cookie, 99u);
    EXPECT_EQ(completion->len, text.size());
    // The remote CPU saw nothing: no completions, no interrupts.
    EXPECT_TRUE(server_rcq_.empty());
    EXPECT_EQ(server_rcq_.interruptCount(), 0u);
}

TEST_F(ViNicTest, RdmaReadOfLargeRegionFragments)
{
    connectPair();
    const uint64_t len = 128 * util::kKiB;
    auto [dst, dst_h] = makeBuffer(client_nic_, client_mem_, len);
    auto [src, src_h] = makeBuffer(server_nic_, server_mem_, len);
    (void)src_h;
    std::vector<uint8_t> pattern(len);
    for (size_t i = 0; i < len; ++i)
        pattern[i] = static_cast<uint8_t>(i % 241);
    server_mem_.write(src, pattern.data(), len);

    const uint64_t before = server_nic_.packetsSent();
    vi::WorkDescriptor read;
    read.local_addr = dst;
    read.len = len;
    read.remote_addr = src;
    ASSERT_TRUE(client_nic_.postRdmaRead(*client_ep_, read, dst_h));
    sim_.run();

    // Three response fragments at the cLan packet size.
    EXPECT_EQ(server_nic_.packetsSent() - before, 3u);
    std::vector<uint8_t> out(len);
    client_mem_.read(dst, out.data(), len);
    EXPECT_EQ(out, pattern);
}

TEST_F(ViNicTest, RdmaReadFromUnregisteredMemoryBreaksConnection)
{
    connectPair();
    auto [dst, dst_h] = makeBuffer(client_nic_, client_mem_, 64);
    const Addr unregistered = server_mem_.allocate(64);

    vi::WorkDescriptor read;
    read.local_addr = dst;
    read.len = 64;
    read.remote_addr = unregistered;
    ASSERT_TRUE(client_nic_.postRdmaRead(*client_ep_, read, dst_h));
    sim_.run();
    EXPECT_EQ(server_nic_.protectionErrors(), 1u);
    EXPECT_EQ(server_ep_->state(), EndpointState::Error);
    EXPECT_EQ(client_ep_->state(), EndpointState::Error);
}

TEST_F(ViNicTest, DroppedRequestLosesMessageSilently)
{
    connectPair();
    fabric_.setDropFilter([](const net::Packet &) { return true; });
    auto [src, src_h] = makeBuffer(client_nic_, client_mem_, 64);
    auto [dst, dst_h] = makeBuffer(server_nic_, server_mem_, 64);
    WorkDescriptor recv;
    recv.local_addr = dst;
    recv.len = 64;
    ASSERT_TRUE(server_nic_.postRecv(*server_ep_, recv, dst_h));
    WorkDescriptor send;
    send.local_addr = src;
    send.len = 64;
    ASSERT_TRUE(client_nic_.postSend(*client_ep_, send, src_h));
    sim_.run();
    // Sender's local completion fires (it cannot tell), but nothing
    // arrives: this is why DSA adds request-level retransmission.
    EXPECT_FALSE(client_scq_.empty());
    EXPECT_TRUE(server_rcq_.empty());
    EXPECT_EQ(server_ep_->postedRecvCount(), 1u);
}

} // namespace
} // namespace v3sim::vi
