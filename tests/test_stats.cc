/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace v3sim::sim
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Sampler, EmptyIsZero)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Sampler, MomentsExact)
{
    Sampler s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic textbook data set
}

TEST(Sampler, ResetClears)
{
    Sampler s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, QuantilesOrdered)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
    EXPECT_EQ(h.count(), 1000u);
}

TEST(Histogram, SingleValueQuantile)
{
    Histogram h;
    h.add(100.0);
    // 100 falls in bucket [64, 128) whose midpoint is 96.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 96.0);
}

TEST(Histogram, TailQuantileAtSparseCounts)
{
    // The p99.9 export must follow the same order-statistic rule as
    // the other quantiles: target index floor(q * (count - 1)), not
    // "the max once any outlier exists". At 10 samples one outlier
    // is 10% of the population — far above the 0.1% tail — yet the
    // target index (floor(0.999 * 9) = 8) still lands in the body.
    Histogram sparse;
    for (int i = 0; i < 9; ++i)
        sparse.add(10.0); // bucket [8, 16), midpoint 12
    sparse.add(1000.0);   // bucket [512, 1024), midpoint 768
    EXPECT_DOUBLE_EQ(sparse.quantile(0.999), 12.0);
    EXPECT_DOUBLE_EQ(sparse.quantile(1.0), 768.0);

    // At 1000 samples, two outliers are 0.2% of the population:
    // p99 (target 989) stays in the body, p99.9 (target 998) must
    // resolve to the outlier bucket.
    Histogram dense;
    for (int i = 0; i < 998; ++i)
        dense.add(10.0);
    dense.add(1.0e6); // bucket [2^19, 2^20), midpoint 786432
    dense.add(1.0e6);
    EXPECT_DOUBLE_EQ(dense.quantile(0.99), 12.0);
    EXPECT_DOUBLE_EQ(dense.quantile(0.999), 786432.0);
}

TEST(Histogram, EmptyQuantileIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(TimeWeighted, AveragesPiecewiseConstant)
{
    TimeWeighted tw;
    tw.reset(0, 0.0);
    tw.set(usecs(10), 4.0);  // 0 for [0,10)
    tw.set(usecs(30), 0.0);  // 4 for [10,30)
    // Average over [0,40]: (0*10 + 4*20 + 0*10) / 40 = 2.
    EXPECT_DOUBLE_EQ(tw.average(usecs(40)), 2.0);
}

TEST(TimeWeighted, AdjustTracksDeltas)
{
    TimeWeighted tw;
    tw.reset(0, 0.0);
    tw.adjust(0, 2.0);
    tw.adjust(usecs(10), 2.0);
    EXPECT_DOUBLE_EQ(tw.current(), 4.0);
    // [0,10): 2, [10,20): 4 -> avg 3 over [0,20].
    EXPECT_DOUBLE_EQ(tw.average(usecs(20)), 3.0);
}

TEST(TimeWeighted, ZeroSpanReturnsCurrent)
{
    TimeWeighted tw;
    tw.reset(usecs(5), 7.0);
    EXPECT_DOUBLE_EQ(tw.average(usecs(5)), 7.0);
}

} // namespace
} // namespace v3sim::sim
