/**
 * @file
 * End-to-end integration tests: DSA client (all three
 * implementations) against a live V3 server over the VI fabric.
 * Covers connection setup, data integrity through cache and disks,
 * flow control, retransmission, reconnection, and the qualitative
 * latency ordering the paper reports.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dsa/dsa_client.hh"
#include "dsa/local_backend.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"

namespace v3sim::dsa
{
namespace
{

using osmodel::Node;
using osmodel::NodeConfig;
using sim::Addr;
using sim::Task;
using sim::Tick;
using sim::usecs;

/** Client host + V3 server with a striped 4-disk volume. */
class EndToEnd : public ::testing::TestWithParam<DsaImpl>
{
  protected:
    EndToEnd()
        : sim_(12345),
          fabric_(sim_.queue()),
          host_(sim_, NodeConfig{.name = "db", .cpus = 4})
    {
        storage::V3ServerConfig server_config;
        server_config.name = "v3";
        server_config.cache_bytes = 4ull * 1024 * 1024;
        server_ = std::make_unique<storage::V3Server>(sim_, fabric_,
                                                      server_config);
        auto disks = server_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "v3.d", 4);
        volume_ = server_->volumeManager().addStripedVolume(
            disks, 64 * 1024);
        server_->start();

        nic_ = std::make_unique<vi::ViNic>(sim_, fabric_,
                                           host_.memory(), "db.nic");
    }

    std::unique_ptr<DsaClient>
    makeClient(DsaImpl impl, DsaConfig config = {})
    {
        auto client = std::make_unique<DsaClient>(
            impl, host_, *nic_, server_->nic().port(), volume_,
            config);
        bool ok = false;
        sim::spawn([](DsaClient &c, bool &out) -> Task<> {
            out = co_await c.connect();
        }(*client, ok));
        sim_.run();
        EXPECT_TRUE(ok);
        return client;
    }

    /** Allocates an app buffer filled with a pattern. */
    Addr
    patternBuffer(uint64_t len, uint8_t salt)
    {
        const Addr buffer = host_.memory().allocate(len);
        std::vector<uint8_t> data(len);
        for (uint64_t i = 0; i < len; ++i)
            data[i] = static_cast<uint8_t>((i * 7 + salt) & 0xFF);
        host_.memory().write(buffer, data.data(), len);
        return buffer;
    }

    bool
    checkPattern(Addr buffer, uint64_t len, uint8_t salt)
    {
        std::vector<uint8_t> data(len);
        host_.memory().read(buffer, data.data(), len);
        for (uint64_t i = 0; i < len; ++i) {
            if (data[i] != static_cast<uint8_t>((i * 7 + salt) & 0xFF))
                return false;
        }
        return true;
    }

    sim::Simulation sim_;
    net::Fabric fabric_;
    Node host_;
    std::unique_ptr<storage::V3Server> server_;
    uint32_t volume_ = 0;
    std::unique_ptr<vi::ViNic> nic_;
};

TEST_P(EndToEnd, ConnectAndHello)
{
    auto client = makeClient(GetParam());
    EXPECT_TRUE(client->connected());
    EXPECT_GT(client->capacity(), 0u);
}

TEST_P(EndToEnd, WriteThenReadBack8K)
{
    auto client = makeClient(GetParam());
    const Addr wbuf = patternBuffer(8192, 3);
    const Addr rbuf = host_.memory().allocate(8192);

    bool wrote = false, read = false;
    sim::spawn([](DsaClient &c, Addr w, Addr r, bool &wo,
                  bool &ro) -> Task<> {
        wo = co_await c.write(16384, 8192, w);
        ro = co_await c.read(16384, 8192, r);
    }(*client, wbuf, rbuf, wrote, read));
    sim_.run();

    EXPECT_TRUE(wrote);
    EXPECT_TRUE(read);
    EXPECT_TRUE(checkPattern(rbuf, 8192, 3));
    EXPECT_EQ(client->ioCount(), 2u);
    EXPECT_EQ(client->retransmitCount(), 0u);
}

TEST_P(EndToEnd, LargeTransferRoundTrip)
{
    auto client = makeClient(GetParam());
    const uint64_t len = 128 * 1024;
    const Addr wbuf = patternBuffer(len, 9);
    const Addr rbuf = host_.memory().allocate(len);

    bool wrote = false, read = false;
    sim::spawn([](DsaClient &c, Addr w, Addr r, uint64_t n, bool &wo,
                  bool &ro) -> Task<> {
        wo = co_await c.write(1024 * 1024, n, w);
        ro = co_await c.read(1024 * 1024, n, r);
    }(*client, wbuf, rbuf, len, wrote, read));
    sim_.run();

    EXPECT_TRUE(wrote);
    EXPECT_TRUE(read);
    EXPECT_TRUE(checkPattern(rbuf, len, 9));
}

TEST_P(EndToEnd, DataSurvivesCacheEviction)
{
    // Write a block, then flood the (4 MB) cache with other blocks,
    // then read the original back: it must come from disk intact.
    auto client = makeClient(GetParam());
    const Addr wbuf = patternBuffer(8192, 7);
    const Addr rbuf = host_.memory().allocate(8192);
    const Addr flood = host_.memory().allocate(8192);

    bool ok = true;
    sim::spawn([](DsaClient &c, Addr w, Addr f, Addr r,
                  bool &result) -> Task<> {
        result = co_await c.write(0, 8192, w) && result;
        for (int i = 1; i <= 600; ++i) {
            result = co_await c.read(
                         static_cast<uint64_t>(i) * 8192, 8192, f) &&
                     result;
        }
        result = co_await c.read(0, 8192, r) && result;
    }(*client, wbuf, flood, rbuf, ok));
    sim_.run();

    EXPECT_TRUE(ok);
    EXPECT_TRUE(checkPattern(rbuf, 8192, 7));
}

TEST_P(EndToEnd, ConcurrentWorkersNoOverrun)
{
    // More concurrent requests than credits: flow control must queue
    // them client-side; the server must never see a receive overrun.
    DsaConfig config;
    config.max_outstanding = 8;
    auto client = makeClient(GetParam(), config);
    const Addr buf = host_.memory().allocate(8192);

    int done = 0;
    for (int w = 0; w < 32; ++w) {
        sim::spawn([](DsaClient &c, Addr b, int id, int &count)
                       -> Task<> {
            for (int i = 0; i < 4; ++i) {
                co_await c.read(
                    static_cast<uint64_t>(id * 4 + i) * 8192, 8192,
                    b);
            }
            ++count;
        }(*client, buf, w, done));
    }
    sim_.run();

    EXPECT_EQ(done, 32);
    EXPECT_EQ(server_->nic().recvOverruns(), 0u);
    EXPECT_EQ(client->ioCount(), 128u);
}

TEST_P(EndToEnd, OutOfRangeReadFails)
{
    auto client = makeClient(GetParam());
    const Addr buf = host_.memory().allocate(8192);
    bool ok = true;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.read(c.capacity() - 4096, 8192, b);
    }(*client, buf, ok));
    sim_.run();
    EXPECT_FALSE(ok);
}

TEST_P(EndToEnd, RetransmissionRecoversLostRequest)
{
    DsaConfig config;
    config.retransmit_timeout = sim::msecs(5);
    auto client = makeClient(GetParam(), config);
    const Addr buf = host_.memory().allocate(8192);

    // Drop exactly one client->server packet, then heal.
    int drops_left = 1;
    fabric_.setDropFilter([&](const net::Packet &packet) {
        if (drops_left > 0 && packet.dst == server_->nic().port()) {
            --drops_left;
            return true;
        }
        return false;
    });

    bool ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.read(8192, 8192, b);
    }(*client, buf, ok));
    sim_.run();

    EXPECT_TRUE(ok);
    EXPECT_GE(client->retransmitCount(), 1u);
}

TEST_P(EndToEnd, WriteRetransmissionIsExactlyOnce)
{
    // Drop the server's completion so the client retransmits a write
    // the server already executed: the dedup filter must answer from
    // memory rather than re-running it.
    DsaConfig config;
    config.retransmit_timeout = sim::msecs(5);
    auto client = makeClient(GetParam(), config);
    const Addr buf = patternBuffer(8192, 1);

    int drops_left = 1;
    fabric_.setDropFilter([&](const net::Packet &packet) {
        if (drops_left > 0 && packet.src == server_->nic().port()) {
            --drops_left;
            return true;
        }
        return false;
    });

    bool ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.write(32768, 8192, b);
    }(*client, buf, ok));
    sim_.run();

    EXPECT_TRUE(ok);
    EXPECT_GE(client->retransmitCount(), 1u);
    EXPECT_GE(server_->retransmitHits(), 1u);
    EXPECT_EQ(server_->writeCount(), 1u); // executed exactly once
}

TEST_P(EndToEnd, ReconnectionReplaysOutstandingIo)
{
    DsaConfig config;
    config.retransmit_timeout = sim::msecs(5);
    config.max_retransmits = 1;
    config.reconnect_delay = sim::msecs(1);
    auto client = makeClient(GetParam(), config);
    const Addr buf = host_.memory().allocate(8192);

    // Sever the connection silently mid-run (no notification), as a
    // NIC/link failure would.
    sim_.queue().schedule(usecs(10), [&] {
        nic_->breakConnection(*nic_->endpoint(0));
    });

    bool ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.read(8192, 8192, b);
    }(*client, buf, ok));
    sim_.run();

    EXPECT_TRUE(ok);
    EXPECT_GE(client->reconnectCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, EndToEnd,
    ::testing::Values(DsaImpl::Kdsa, DsaImpl::Wdsa, DsaImpl::Cdsa),
    [](const ::testing::TestParamInfo<DsaImpl> &info) {
        return dsaImplName(info.param);
    });

TEST(DsaComparison, LatencyOrderingMatchesPaper)
{
    // Section 5.1: cDSA has the lowest latency, kDSA next, wDSA the
    // highest (single outstanding 8K cached read).
    auto measure = [](DsaImpl impl) {
        sim::Simulation sim(7);
        net::Fabric fabric(sim.queue());
        Node host(sim, NodeConfig{.name = "db", .cpus = 4});

        storage::V3ServerConfig server_config;
        server_config.cache_bytes = 16ull * 1024 * 1024;
        storage::V3Server server(sim, fabric, server_config);
        auto disks = server.diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 2);
        const uint32_t volume =
            server.volumeManager().addStripedVolume(disks, 64 * 1024);
        server.start();

        vi::ViNic nic(sim, fabric, host.memory(), "db.nic");
        DsaClient client(impl, host, nic, server.nic().port(),
                         volume);
        const Addr buf = host.memory().allocate(8192);

        sim::spawn([](DsaClient &c, Addr b) -> Task<> {
            co_await c.connect();
            // Warm the cache, then measure repeated cached reads.
            co_await c.read(0, 8192, b);
            c.resetStats();
            for (int i = 0; i < 50; ++i)
                co_await c.read(0, 8192, b);
        }(client, buf));
        sim.run();
        EXPECT_EQ(client.ioCount(), 50u);
        return client.latency().mean();
    };

    const double cdsa = measure(DsaImpl::Cdsa);
    const double kdsa = measure(DsaImpl::Kdsa);
    const double wdsa = measure(DsaImpl::Wdsa);
    EXPECT_LT(cdsa, kdsa);
    EXPECT_LT(kdsa, wdsa);
    // Paper: V3 adds ~15-50us over raw VI; total ~100-250us at 8K.
    EXPECT_GT(cdsa, usecs(50));
    EXPECT_LT(wdsa, usecs(400));
}

TEST(LocalBackendTest, KernelPathRoundTrip)
{
    sim::Simulation sim(3);
    Node host(sim, NodeConfig{.name = "db", .cpus = 4});
    disk::Disk disk(sim, disk::DiskSpec::scsi10k(), sim.forkRng(),
                    "local.d0");
    disk::SingleDiskVolume volume(disk);
    LocalBackend local(host, volume);

    const Addr wbuf = host.memory().allocate(8192);
    const Addr rbuf = host.memory().allocate(8192);
    std::vector<uint8_t> pattern(8192, 0x5A);
    host.memory().write(wbuf, pattern.data(), pattern.size());

    bool wrote = false, read = false;
    sim::spawn([](LocalBackend &dev, Addr w, Addr r, bool &wo,
                  bool &ro) -> Task<> {
        wo = co_await dev.write(4096, 8192, w);
        ro = co_await dev.read(4096, 8192, r);
    }(local, wbuf, rbuf, wrote, read));
    sim.run();

    EXPECT_TRUE(wrote);
    EXPECT_TRUE(read);
    std::vector<uint8_t> out(8192);
    host.memory().read(rbuf, out.data(), out.size());
    EXPECT_EQ(out, pattern);
    EXPECT_EQ(local.ioCount(), 2u);
    EXPECT_GE(local.interruptCount(), 1u);
    // The kernel path charged CPU in Kernel + Lock categories.
    EXPECT_GT(host.cpus().busyTime(osmodel::CpuCat::Kernel), 0);
    EXPECT_GT(host.cpus().busyTime(osmodel::CpuCat::Lock), 0);
}

} // namespace
} // namespace v3sim::dsa
