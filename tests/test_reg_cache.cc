/**
 * @file
 * Unit tests for RegCache: batched vs per-I/O deregistration policy,
 * region retirement, and capacity-pressure flushing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsa/reg_cache.hh"

namespace v3sim::dsa
{
namespace
{

vi::ViCosts
smallNic()
{
    vi::ViCosts costs;
    costs.max_registered_bytes = 1 * util::kMiB;
    costs.max_table_entries = 256;
    return costs;
}

TEST(RegCache, UnbatchedPaysPerIo)
{
    vi::ViCosts costs;
    vi::MemoryRegistry registry(costs, 8);
    RegCache cache(registry, /*pre_pinned=*/true, /*batched=*/false);

    auto reg = cache.acquire(0x10000, 8192);
    ASSERT_TRUE(reg.has_value());
    EXPECT_EQ(reg->cost, costs.table_update);
    EXPECT_EQ(cache.release(reg->handle), costs.table_remove);
    EXPECT_EQ(registry.liveEntries(), 0u);
}

TEST(RegCache, BatchedReleaseIsFreeUntilRegionRetires)
{
    vi::ViCosts costs;
    vi::MemoryRegistry registry(costs, 4);
    RegCache cache(registry, true, true);

    std::vector<vi::MemHandle> handles;
    for (int i = 0; i < 4; ++i) {
        auto reg =
            cache.acquire(0x10000 + i * 0x4000, 8192);
        ASSERT_TRUE(reg);
        handles.push_back(reg->handle);
    }
    // First three releases free nothing (region not fully covered
    // until all four allocations AND releases happened).
    EXPECT_EQ(cache.release(handles[0]), 0);
    EXPECT_EQ(cache.release(handles[1]), 0);
    EXPECT_EQ(cache.release(handles[2]), 0);
    EXPECT_EQ(registry.liveEntries(), 4u);
    // The fourth completes the region: one table operation frees it.
    EXPECT_EQ(cache.release(handles[3]), costs.table_remove);
    EXPECT_EQ(registry.liveEntries(), 0u);
    EXPECT_EQ(registry.regionDeregCount(), 1u);
}

TEST(RegCache, PartialRegionHeldUntilAllocationsComplete)
{
    vi::ViCosts costs;
    vi::MemoryRegistry registry(costs, 4);
    RegCache cache(registry, true, true);

    auto r0 = cache.acquire(0x10000, 4096);
    ASSERT_TRUE(r0);
    // Released, but the region has only 1 of 4 entries allocated:
    // the entry stays in the table (paper: a region deregisters when
    // all its buffers have completed — i.e. when it has filled and
    // drained).
    EXPECT_EQ(cache.release(r0->handle), 0);
    EXPECT_EQ(registry.liveEntries(), 1u);

    // Filling the region with three more I/Os and completing them
    // retires it.
    std::vector<vi::MemHandle> handles;
    for (int i = 1; i < 4; ++i) {
        auto reg = cache.acquire(0x20000 + i * 0x4000, 4096);
        ASSERT_TRUE(reg);
        handles.push_back(reg->handle);
    }
    for (auto &handle : handles)
        cache.release(handle);
    EXPECT_EQ(registry.liveEntries(), 0u);
}

TEST(RegCache, CapacityPressureForcesFlush)
{
    // NIC limited to 1 MiB registered; the region (256 entries) is
    // larger than the test's I/O count, so no region ever fills and
    // retires on its own — entries linger even after completion.
    // When the capacity trips, acquire() must flush drained regions
    // and succeed.
    vi::MemoryRegistry registry(smallNic(), 256);
    RegCache cache(registry, true, true);

    std::vector<vi::MemHandle> handles;
    uint64_t addr = 1 << 20;
    // 128 x 8K = 1 MiB: fills capacity exactly.
    for (int i = 0; i < 128; ++i) {
        auto reg = cache.acquire(addr, 8192);
        ASSERT_TRUE(reg.has_value()) << "i=" << i;
        handles.push_back(reg->handle);
        addr += 16384;
    }
    // Everything completed, but regions linger (second region only
    // half allocated).
    for (auto &handle : handles)
        cache.release(handle);
    EXPECT_GT(registry.registeredBytes(), 0u);

    // The next acquire exceeds capacity, forcing the flush path.
    auto reg = cache.acquire(addr, 8192);
    ASSERT_TRUE(reg.has_value());
    EXPECT_EQ(cache.forcedFlushCount(), 1u);
    EXPECT_GT(reg->cost, 0);
    cache.release(reg->handle);
}

TEST(RegCache, PinningFollowsPrePinnedFlag)
{
    vi::ViCosts costs;
    vi::MemoryRegistry registry(costs, 8);
    RegCache pinned(registry, /*pre_pinned=*/false,
                    /*batched=*/false);
    auto reg = pinned.acquire(0x40000, 8192);
    ASSERT_TRUE(reg);
    // 2 pages pinned + table update.
    EXPECT_EQ(reg->cost, costs.table_update + 2 * costs.page_pin);
    // Release unpins as well.
    EXPECT_EQ(pinned.release(reg->handle),
              costs.table_remove + 2 * costs.page_pin);
}

} // namespace
} // namespace v3sim::dsa
