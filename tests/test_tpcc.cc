/**
 * @file
 * Unit tests for the TPC-C workload model: mix frequencies, demand
 * scaling, I/O distributions, and the hot/cold offset skew.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"
#include "tpcc/workload.hh"

namespace v3sim::tpcc
{
namespace
{

TpccConfig
smallConfig()
{
    TpccConfig config;
    config.warehouses = 10;
    config.bytes_per_warehouse = 8 * util::kMiB;
    return config;
}

TEST(Workload, MixMatchesStandardWeights)
{
    Workload workload(smallConfig(), UINT64_MAX, sim::Rng(5));
    std::map<TxnType, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[workload.sampleType()];
    EXPECT_NEAR(counts[TxnType::NewOrder] / double(n), 0.45, 0.01);
    EXPECT_NEAR(counts[TxnType::Payment] / double(n), 0.43, 0.01);
    EXPECT_NEAR(counts[TxnType::OrderStatus] / double(n), 0.04,
                0.005);
    EXPECT_NEAR(counts[TxnType::Delivery] / double(n), 0.04, 0.005);
    EXPECT_NEAR(counts[TxnType::StockLevel] / double(n), 0.04,
                0.005);
}

TEST(Workload, ReadFractionHonored)
{
    Workload workload(smallConfig(), UINT64_MAX, sim::Rng(7));
    int reads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        reads += workload.sampleIsRead();
    EXPECT_NEAR(reads / double(n), 0.70, 0.01);
}

TEST(Workload, IoCountScalesWithTransactionType)
{
    Workload workload(smallConfig(), UINT64_MAX, sim::Rng(9));
    auto mean_ios = [&](TxnType type) {
        double sum = 0;
        for (int i = 0; i < 20000; ++i)
            sum += workload.sampleIoCount(type);
        return sum / 20000;
    };
    const double new_order = mean_ios(TxnType::NewOrder);
    const double payment = mean_ios(TxnType::Payment);
    const double delivery = mean_ios(TxnType::Delivery);
    EXPECT_NEAR(new_order, smallConfig().ios_per_txn, 0.5);
    EXPECT_LT(payment, new_order);
    EXPECT_GT(delivery, 1.5 * new_order);
    // Always at least one I/O.
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(workload.sampleIoCount(TxnType::Payment), 1u);
}

TEST(Workload, CpuDemandScalesWithType)
{
    Workload workload(smallConfig(), UINT64_MAX, sim::Rng(11));
    EXPECT_GT(workload.cpuDemand(TxnType::StockLevel),
              workload.cpuDemand(TxnType::NewOrder));
    EXPECT_LT(workload.cpuDemand(TxnType::Payment),
              workload.cpuDemand(TxnType::NewOrder));
}

TEST(Workload, OffsetsPageAlignedAndInRange)
{
    Workload workload(smallConfig(), UINT64_MAX, sim::Rng(13));
    for (int i = 0; i < 50000; ++i) {
        const uint64_t offset = workload.sampleOffset();
        EXPECT_EQ(offset % 8192, 0u);
        EXPECT_LT(offset, workload.workingSetBytes());
    }
}

TEST(Workload, HotSkewConcentratesAccesses)
{
    TpccConfig config = smallConfig();
    config.hot_access_fraction = 0.45;
    config.hot_space_fraction = 0.05;
    Workload workload(config, UINT64_MAX, sim::Rng(15));
    const uint64_t hot_limit = static_cast<uint64_t>(
        workload.workingSetBytes() * 0.05);
    int hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hot += workload.sampleOffset() < hot_limit;
    EXPECT_NEAR(hot / double(n), 0.45, 0.02);
}

TEST(Workload, WorkingSetClampsToDevice)
{
    TpccConfig config = smallConfig(); // 80 MiB nominal
    Workload workload(config, 16 * util::kMiB, sim::Rng(17));
    EXPECT_LE(workload.workingSetBytes(), 16 * util::kMiB);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(workload.sampleOffset(), 16 * util::kMiB);
}

TEST(Workload, PaperScaleConfigs)
{
    // Section 6: 1,625 warehouses ~ 100 GB; 10,000 ~ 1 TB (before
    // the simulation's documented working-set scaling).
    TpccConfig mid;
    mid.warehouses = 1625;
    mid.bytes_per_warehouse = 64 * util::kMiB;
    EXPECT_NEAR(static_cast<double>(mid.workingSetBytes()) /
                    (100.0 * 1024 * 1024 * 1024),
                1.0, 0.05);
}

TEST(Workload, TypeNames)
{
    EXPECT_STREQ(txnTypeName(TxnType::NewOrder), "New-Order");
    EXPECT_STREQ(txnTypeName(TxnType::StockLevel), "Stock-Level");
}

} // namespace
} // namespace v3sim::tpcc
