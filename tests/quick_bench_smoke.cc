/**
 * @file
 * Smoke test for the bench artifact pipeline: runs one real bench
 * binary with `--quick --json <path>` and validates the emitted
 * artifact against the schema every fig/abl bench shares.
 *
 * Registered with ctest as `quick_bench_smoke`; CMake passes the
 * bench binary's location and a scratch output path.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hh"

using v3sim::util::JsonValue;

namespace
{

int
fail(const std::string &why)
{
    std::fprintf(stderr, "quick_bench_smoke: %s\n", why.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        return fail("usage: quick_bench_smoke <bench-binary> "
                    "<output.json>");
    }
    const std::string bench = argv[1];
    const std::string out_path = argv[2];

    std::remove(out_path.c_str());
    const std::string command =
        "\"" + bench + "\" --quick --json \"" + out_path + "\"";
    const int rc = std::system(command.c_str());
    if (rc != 0)
        return fail("bench exited with status " + std::to_string(rc));

    std::ifstream in(out_path);
    if (!in)
        return fail("bench did not write " + out_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const auto doc = JsonValue::parse(buffer.str());
    if (!doc)
        return fail("artifact is not valid JSON");
    if (!doc->isObject())
        return fail("artifact root is not an object");

    const JsonValue *name = doc->find("bench");
    if (!name || !name->isString() || name->string.empty())
        return fail("missing \"bench\" name");
    const JsonValue *schema = doc->find("schema");
    if (!schema || !schema->isNumber() || schema->number != 1)
        return fail("missing or unexpected \"schema\" version");
    const JsonValue *quick = doc->find("quick");
    if (!quick || quick->type != JsonValue::Type::Bool ||
        !quick->boolean) {
        return fail("artifact should record quick=true");
    }
    const JsonValue *rows = doc->find("rows");
    if (!rows || !rows->isArray() || rows->array.empty())
        return fail("missing or empty \"rows\"");
    for (const JsonValue &row : rows->array)
        if (!row.isObject() || row.object.empty())
            return fail("row is not a non-empty object");

    // fig/abl benches that run a Simulation attach its full registry
    // snapshot; check it looks like one (dotted metric paths).
    const JsonValue *metrics = doc->find("metrics");
    if (metrics && metrics->isObject()) {
        bool dotted = false;
        for (const auto &[path, value] : metrics->object)
            dotted |= path.find('.') != std::string::npos;
        if (!metrics->object.empty() && !dotted)
            return fail("metrics keys are not dotted paths");
    }

    std::printf("quick_bench_smoke: %s ok (%zu rows%s)\n",
                name->string.c_str(), rows->array.size(),
                metrics ? ", metrics attached" : "");
    return 0;
}
