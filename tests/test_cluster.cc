/**
 * @file
 * Tests for the cluster control plane: MetaService quorum commits,
 * lease expiry and re-election, heartbeat failure detection and
 * bounce handling, and the end-to-end Testbed path — node crash ->
 * driven failover -> epoch bump -> stale-client redirect -> resync
 * -> readmission.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/heartbeat.hh"
#include "cluster/meta_service.hh"
#include "cluster/placement.hh"
#include "scenarios/testbed.hh"

namespace v3sim::cluster
{
namespace
{

using scenarios::Backend;
using scenarios::HostParams;
using scenarios::StorageParams;
using scenarios::Testbed;
using sim::Addr;
using sim::Task;

constexpr uint64_t kIo = 8192;

/** RAID-10 genesis: two shards, nodes {0,1} and {2,3}, all Active. */
PlacementMap
twoShardGenesis()
{
    PlacementMap map;
    map.stripe_unit = 64 * util::kKiB;
    for (int s = 0; s < 2; ++s) {
        ShardView shard;
        shard.replicas.push_back(
            ReplicaView{2 * s, ReplicaState::Active});
        shard.replicas.push_back(
            ReplicaView{2 * s + 1, ReplicaState::Active});
        map.shards.push_back(std::move(shard));
    }
    return map;
}

/** Runs one propose() to completion; returns its verdict. */
bool
proposeNow(sim::Simulation &sim, MetaService &meta, int shard,
           int node, ReplicaState state)
{
    bool ok = false;
    sim::spawn([](MetaService &m, int s, int n, ReplicaState st,
                  bool &out) -> Task<> {
        out = co_await m.propose(s, n, st);
    }(meta, shard, node, state, ok));
    sim.runUntil(sim.now() + sim::msecs(1));
    return ok;
}

TEST(MetaService, GenesisIsCommittedAsEpochOne)
{
    sim::Simulation sim(7);
    MetaService meta(sim, MetaConfig{}, twoShardGenesis());

    EXPECT_EQ(meta.committedEpoch(), 1u);
    EXPECT_EQ(meta.primary(), 0);
    EXPECT_EQ(meta.replicaCount(), 3);
    // Record zero of every log is the genesis map.
    for (int id = 0; id < meta.replicaCount(); ++id)
        EXPECT_EQ(meta.replica(id).log().size(), 1u);
    EXPECT_EQ(meta.committed().shards.size(), 2u);
    EXPECT_EQ(meta.committed().shardFor(64 * util::kKiB), 1u);
}

TEST(MetaService, ProposeCommitsOnMajorityAndBumpsEpoch)
{
    sim::Simulation sim(7);
    MetaService meta(sim, MetaConfig{}, twoShardGenesis());

    EXPECT_TRUE(
        proposeNow(sim, meta, 0, 1, ReplicaState::Failed));
    EXPECT_EQ(meta.committedEpoch(), 2u);
    EXPECT_EQ(meta.commitCount(), 1u);
    EXPECT_EQ(meta.committed().shards[0].replicas[1].state,
              ReplicaState::Failed);
    EXPECT_EQ(meta.committed().shards[0].activeCount(), 1u);
    // All three replicas were live: each appended the record.
    for (int id = 0; id < meta.replicaCount(); ++id)
        EXPECT_EQ(meta.replica(id).log().size(), 2u);

    // fetch() serves the committed map.
    PlacementMap fetched;
    bool fetch_ok = false;
    sim::spawn([](MetaService &m, PlacementMap &out,
                  bool &ok) -> Task<> {
        ok = co_await m.fetch(out);
    }(meta, fetched, fetch_ok));
    sim.runUntil(sim.now() + sim::msecs(1));
    EXPECT_TRUE(fetch_ok);
    EXPECT_EQ(fetched.epoch, 2u);
    EXPECT_EQ(meta.fetchCount(), 1u);
}

TEST(MetaService, ProposeAndFetchFailWithoutQuorum)
{
    sim::Simulation sim(7);
    MetaService meta(sim, MetaConfig{}, twoShardGenesis());

    // A minority fragment (1 of 3) must reject writes AND reads:
    // the surviving replica alone cannot prove its map is current.
    meta.replica(1).crash();
    meta.replica(2).crash();
    EXPECT_FALSE(
        proposeNow(sim, meta, 0, 1, ReplicaState::Failed));
    EXPECT_EQ(meta.committedEpoch(), 1u);
    EXPECT_GE(meta.rejectCount(), 1u);

    PlacementMap fetched;
    bool fetch_ok = true;
    sim::spawn([](MetaService &m, PlacementMap &out,
                  bool &ok) -> Task<> {
        ok = co_await m.fetch(out);
    }(meta, fetched, fetch_ok));
    sim.runUntil(sim.now() + sim::msecs(1));
    EXPECT_FALSE(fetch_ok);

    // Quorum restored: the same proposal now commits.
    meta.replica(1).restart();
    EXPECT_TRUE(
        proposeNow(sim, meta, 0, 1, ReplicaState::Failed));
    EXPECT_EQ(meta.committedEpoch(), 2u);
    // The crashed replica's log did not get the record.
    EXPECT_EQ(meta.replica(0).log().size(), 2u);
    EXPECT_EQ(meta.replica(2).log().size(), 1u);
}

TEST(MetaService, PrimaryCrashElectsMinimumLiveAfterLeaseExpiry)
{
    sim::Simulation sim(7);
    MetaService meta(sim, MetaConfig{}, twoShardGenesis());
    meta.start();

    sim.runUntil(sim.now() + sim::msecs(2));
    meta.replica(0).crash();

    // Inside the old lease: no election yet, writes unavailable.
    EXPECT_FALSE(
        proposeNow(sim, meta, 0, 0, ReplicaState::Failed));
    EXPECT_EQ(meta.primary(), 0);
    EXPECT_EQ(meta.electionCount(), 0u);

    // Past lease_duration the loop elects the minimum live id and
    // commits a view-change record (epoch bump, no placement delta).
    sim.runUntil(sim.now() + sim::msecs(40));
    EXPECT_EQ(meta.primary(), 1);
    EXPECT_EQ(meta.electionCount(), 1u);
    EXPECT_EQ(meta.committedEpoch(), 2u);
    EXPECT_GT(meta.replica(1).log().size(),
              meta.replica(0).log().size());

    // Metadata writes flow again through the new primary.
    EXPECT_TRUE(
        proposeNow(sim, meta, 0, 0, ReplicaState::Failed));
    EXPECT_EQ(meta.committedEpoch(), 3u);

    // The old primary rejoining does not depose the new one: its
    // lease is valid and elections only fire on a dead primary.
    meta.replica(0).restart();
    sim.runUntil(sim.now() + sim::msecs(40));
    EXPECT_EQ(meta.primary(), 1);
    EXPECT_EQ(meta.electionCount(), 1u);
    meta.stop();
}

TEST(HeartbeatMonitor, DownAfterConsecutiveMissesUpOnAnswer)
{
    sim::Simulation sim(7);
    bool alive = true;
    uint64_t boot = 1;
    std::vector<HeartbeatPeer> peers;
    peers.push_back(HeartbeatPeer{"n0", [&alive] { return alive; },
                                  [&boot] { return boot; }});
    HeartbeatMonitor hb(sim, HeartbeatConfig{}, std::move(peers));
    hb.start();

    sim.runUntil(sim.now() + sim::msecs(9));
    EXPECT_FALSE(hb.isDown(0));
    EXPECT_GT(hb.probeCount(), 0u);

    // One missed probe is jitter, not a crash.
    alive = false;
    sim.runUntil(sim.now() + sim::msecs(1));
    EXPECT_FALSE(hb.isDown(0));

    // miss_threshold consecutive misses: declared down, once.
    sim.runUntil(sim.now() + sim::msecs(10));
    EXPECT_TRUE(hb.isDown(0));
    EXPECT_EQ(hb.downEventCount(), 1u);

    // First answered probe brings it back.
    alive = true;
    sim.runUntil(sim.now() + sim::msecs(5));
    EXPECT_FALSE(hb.isDown(0));
    EXPECT_EQ(hb.upEventCount(), 1u);
    hb.stop();
}

TEST(HeartbeatMonitor, BounceSurfacesOneDownUpCycle)
{
    sim::Simulation sim(7);
    bool alive = true;
    uint64_t boot = 1;
    std::vector<HeartbeatPeer> peers;
    peers.push_back(HeartbeatPeer{"n0", [&alive] { return alive; },
                                  [&boot] { return boot; }});
    HeartbeatMonitor hb(sim, HeartbeatConfig{}, std::move(peers));
    hb.start();

    sim.runUntil(sim.now() + sim::msecs(9));
    EXPECT_FALSE(hb.isDown(0));

    // The peer crashes and restarts between two answered probes:
    // it never misses one, but its boot epoch moved. The monitor
    // must report a full down/up cycle so the control plane re-walks
    // the node through failover and resync.
    ++boot;
    sim.runUntil(sim.now() + sim::msecs(10));
    EXPECT_EQ(hb.downEventCount(), 1u);
    EXPECT_EQ(hb.upEventCount(), 1u);
    EXPECT_FALSE(hb.isDown(0));
    hb.stop();
}

/** A 4-node (2-shard RAID-10) cluster testbed with detection fast
 *  enough that failover, resync and readmission all complete inside
 *  a few hundred simulated milliseconds. */
class ClusterTest : public ::testing::Test
{
  protected:
    ClusterTest()
    {
        dsa::DsaConfig dsa_config;
        dsa_config.retransmit_timeout = sim::msecs(12);
        dsa_config.max_retransmits = 1;
        dsa_config.reconnect_delay = sim::msecs(1);
        dsa_config.max_reconnect_attempts = 2;
        dsa_config.connect_timeout = sim::msecs(3);

        StorageParams storage_params;
        storage_params.v3_nodes = 4;
        storage_params.disks_per_node = 2;
        storage_params.cache_bytes_per_node = 4 * util::kMiB;
        storage_params.mirrored = true;
        storage_params.mirror.probe_interval = sim::msecs(2);
        storage_params.cluster = true;

        bed_ = std::make_unique<Testbed>(
            Backend::Cdsa, HostParams::midSize(), storage_params,
            dsa_config, /*seed=*/11);
        EXPECT_TRUE(bed_->connectAll());
        buffer_ = bed_->host().memory().allocate(kIo);
    }

    dsa::MirroredDevice &mirror(size_t shard)
    {
        return *bed_->mirrors()[shard];
    }

    /** Runs @p count sequential I/Os (every third a write) through
     *  the volume directory; returns how many succeeded. Bounded
     *  with runUntil: the cluster control loops never terminate. */
    int
    runIos(int count, sim::Tick bound = sim::msecs(2000))
    {
        int succeeded = 0;
        sim::spawn([](sim::Simulation &s, dsa::BlockDevice &device,
                      Addr buf, int n, int &out) -> Task<> {
            for (int i = 0; i < n; ++i) {
                const uint64_t offset =
                    static_cast<uint64_t>(i % 64) * kIo;
                const bool ok =
                    i % 3 == 0
                        ? co_await device.write(offset, kIo, buf)
                        : co_await device.read(offset, kIo, buf);
                if (ok)
                    ++out;
                co_await s.sleep(sim::usecs(500));
            }
        }(bed_->sim(), bed_->device(), buffer_, count, succeeded));
        bed_->sim().runUntil(bed_->sim().now() + bound);
        return succeeded;
    }

    std::unique_ptr<Testbed> bed_;
    Addr buffer_ = sim::kNullAddr;
};

TEST_F(ClusterTest, NodeCrashFailoverRedirectResyncReadmit)
{
    // Crash node 3 (shard 1, leg 1; hosts no metadata replica) for
    // ~95 ms while the workload runs. The heartbeat declares it down
    // in ~6 ms, the reconcile loop commits Failed to the map and
    // fails the leg — well ahead of data-path retransmit exhaustion.
    auto targets = bed_->nodeTargets();
    ASSERT_EQ(targets.size(), 4u);
    bed_->faults().scheduleNodeOutage(
        bed_->sim().now() + sim::msecs(5),
        bed_->sim().now() + sim::msecs(100), *targets[3]);

    EXPECT_EQ(runIos(250), 250);
    // Idle tail: let resync drain and readmission commit.
    bed_->sim().runUntil(bed_->sim().now() + sim::msecs(200));

    cluster::VolumeDirectory &dir =
        *static_cast<cluster::VolumeDirectory *>(&bed_->device());
    EXPECT_GE(dir.drivenFailoverCount(), 1u);
    EXPECT_GE(dir.staleRedirectCount(), 1u);

    // Failed -> Resyncing -> Active: at least three commits on top
    // of genesis. No metadata replica died, so no election.
    MetaService &meta = *bed_->meta();
    EXPECT_GE(meta.committedEpoch(), 4u);
    EXPECT_EQ(meta.electionCount(), 0u);
    EXPECT_EQ(meta.committed().shards[1].activeCount(), 2u);

    EXPECT_GE(mirror(1).failoverCount(), 1u);
    EXPECT_GE(mirror(1).readmitCount(), 1u);
    EXPECT_FALSE(mirror(1).degraded());
    EXPECT_EQ(mirror(1).dirtyBytes(), 0u);

    HeartbeatMonitor &hb = *bed_->heartbeats();
    EXPECT_GE(hb.downEventCount(), 1u);
    EXPECT_GE(hb.upEventCount(), 1u);
}

TEST_F(ClusterTest, MetaPrimaryCrashElectsAndRecovers)
{
    // Crash node 0: one box takes out shard 0 leg 0 AND metadata
    // replica 0 — the genesis lease holder. Metadata writes stall
    // until the lease lapses, replica 1 wins the election (minimum
    // live id), and the view-change epoch bump redirects clients.
    auto targets = bed_->nodeTargets();
    bed_->faults().scheduleNodeOutage(
        bed_->sim().now() + sim::msecs(5),
        bed_->sim().now() + sim::msecs(100), *targets[0]);

    EXPECT_EQ(runIos(250), 250);
    bed_->sim().runUntil(bed_->sim().now() + sim::msecs(200));

    MetaService &meta = *bed_->meta();
    EXPECT_GE(meta.electionCount(), 1u);
    EXPECT_EQ(meta.primary(), 1);

    cluster::VolumeDirectory &dir =
        *static_cast<cluster::VolumeDirectory *>(&bed_->device());
    EXPECT_GE(dir.staleRedirectCount(), 1u);
    // The directory converged back onto the committed map.
    EXPECT_EQ(dir.cachedEpoch(), meta.committedEpoch());

    EXPECT_GE(mirror(0).failoverCount(), 1u);
    EXPECT_GE(mirror(0).readmitCount(), 1u);
    EXPECT_FALSE(mirror(0).degraded());
    EXPECT_EQ(mirror(0).dirtyBytes(), 0u);
    EXPECT_EQ(meta.committed().shards[0].activeCount(), 2u);
}

} // namespace
} // namespace v3sim::cluster
