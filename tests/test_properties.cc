/**
 * @file
 * Property-based tests: invariants that must hold across parameter
 * sweeps rather than single examples — determinism by seed, data
 * round-trip integrity over (backend x size x alignment), statistics
 * conservation, and accounting tiling.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "scenarios/microbench.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"

namespace v3sim
{
namespace
{

using scenarios::Backend;

/** (backend, request size) sweep for data-integrity round trips. */
class RoundTripProperty
    : public ::testing::TestWithParam<
          std::tuple<dsa::DsaImpl, uint64_t>>
{};

TEST_P(RoundTripProperty, DataSurvivesWriteReadCycle)
{
    const auto [impl, size] = GetParam();

    sim::Simulation sim(1234 + size);
    net::Fabric fabric(sim.queue());
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    storage::V3ServerConfig server_config;
    server_config.cache_bytes = 8ull * 1024 * 1024;
    storage::V3Server server(sim, fabric, server_config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "d", 3);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks, 64 * 1024);
    server.start();
    vi::ViNic nic(sim, fabric, host.memory(), "nic");
    dsa::DsaClient client(impl, host, nic, server.nic().port(),
                          volume);

    const sim::Addr wbuf = host.memory().allocate(size);
    const sim::Addr rbuf = host.memory().allocate(size);
    std::vector<uint8_t> pattern(size);
    for (uint64_t i = 0; i < size; ++i)
        pattern[i] = static_cast<uint8_t>((i * 131 + size) & 0xFF);
    host.memory().write(wbuf, pattern.data(), size);

    bool wrote = false, read = false;
    sim::spawn([](dsa::DsaClient &c, uint64_t n, sim::Addr w,
                  sim::Addr r, bool &wo, bool &ro) -> sim::Task<> {
        co_await c.connect();
        // Offset chosen to cross block and stripe boundaries.
        const uint64_t offset = 8192 * 5 + 512;
        wo = co_await c.write(offset, n, w);
        ro = co_await c.read(offset, n, r);
    }(client, size, wbuf, rbuf, wrote, read));
    sim.run();

    ASSERT_TRUE(wrote);
    ASSERT_TRUE(read);
    std::vector<uint8_t> out(size);
    host.memory().read(rbuf, out.data(), size);
    EXPECT_EQ(out, pattern);
}

INSTANTIATE_TEST_SUITE_P(
    BackendBySize, RoundTripProperty,
    ::testing::Combine(::testing::Values(dsa::DsaImpl::Kdsa,
                                         dsa::DsaImpl::Wdsa,
                                         dsa::DsaImpl::Cdsa),
                       ::testing::Values(512ull, 8192ull, 24576ull,
                                         131072ull)),
    [](const ::testing::TestParamInfo<
        std::tuple<dsa::DsaImpl, uint64_t>> &info) {
        return std::string(dsaImplName(std::get<0>(info.param))) +
               "_" + std::to_string(std::get<1>(info.param));
    });

/** Determinism: identical seeds must give identical simulations. */
TEST(Determinism, SameSeedSameMicroResult)
{
    // Uncached reads: disk head positions and rotational samples
    // depend on the RNG stream, so different seeds almost surely
    // diverge while equal seeds must match exactly.
    auto run_once = [](uint64_t seed) {
        scenarios::MicroRig::Config config;
        config.backend = Backend::Kdsa;
        config.cache_bytes = 0;
        config.seed = seed;
        scenarios::MicroRig rig(config);
        const auto r = rig.measureLatency(8192, true, 30, false);
        return r.mean_us;
    };
    EXPECT_DOUBLE_EQ(run_once(42), run_once(42));
    EXPECT_NE(run_once(42), run_once(43));
}

TEST(Determinism, SameSeedSameEventCount)
{
    auto run_once = [](uint64_t seed) {
        sim::Simulation sim(seed);
        net::Fabric fabric(sim.queue());
        osmodel::Node host(
            sim, osmodel::NodeConfig{.name = "db", .cpus = 2});
        storage::V3ServerConfig config;
        config.cache_bytes = 1024 * 1024;
        storage::V3Server server(sim, fabric, config);
        auto disks = server.diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 2);
        const uint32_t volume =
            server.volumeManager().addStripedVolume(disks,
                                                    64 * 1024);
        server.start();
        vi::ViNic nic(sim, fabric, host.memory(), "nic");
        dsa::DsaClient client(dsa::DsaImpl::Cdsa, host, nic,
                              server.nic().port(), volume);
        const sim::Addr buf = host.memory().allocate(8192);
        sim::spawn([](dsa::DsaClient &c, sim::Addr b,
                      sim::Simulation &s) -> sim::Task<> {
            co_await c.connect();
            sim::Rng rng(s.forkRng());
            for (int i = 0; i < 40; ++i) {
                const uint64_t offset =
                    rng.uniformInt(0, 1000) * 8192;
                if (rng.bernoulli(0.7))
                    co_await c.read(offset, 8192, b);
                else
                    co_await c.write(offset, 8192, b);
            }
        }(client, buf, sim));
        sim.run();
        return sim.queue().firedCount();
    };
    EXPECT_EQ(run_once(7), run_once(7));
}

/** Conservation: fabric bytes, server op counts, cache accounting. */
TEST(Conservation, ServerCountsMatchClientCounts)
{
    sim::Simulation sim(5);
    net::Fabric fabric(sim.queue());
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    storage::V3ServerConfig server_config;
    server_config.cache_bytes = 4ull * 1024 * 1024;
    storage::V3Server server(sim, fabric, server_config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "d", 2);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks, 64 * 1024);
    server.start();
    vi::ViNic nic(sim, fabric, host.memory(), "nic");
    dsa::DsaClient client(dsa::DsaImpl::Kdsa, host, nic,
                          server.nic().port(), volume);
    const sim::Addr buf = host.memory().allocate(8192);

    int reads = 0, writes = 0;
    sim::spawn([](dsa::DsaClient &c, sim::Addr b, sim::Simulation &s,
                  int &r_count, int &w_count) -> sim::Task<> {
        co_await c.connect();
        sim::Rng rng(11);
        for (int i = 0; i < 60; ++i) {
            const uint64_t offset = rng.uniformInt(0, 500) * 8192;
            if (rng.bernoulli(0.5)) {
                co_await c.read(offset, 8192, b);
                ++r_count;
            } else {
                co_await c.write(offset, 8192, b);
                ++w_count;
            }
        }
        (void)s;
    }(client, buf, sim, reads, writes));
    sim.run();

    EXPECT_EQ(server.readCount(), static_cast<uint64_t>(reads));
    EXPECT_EQ(server.writeCount(), static_cast<uint64_t>(writes));
    EXPECT_EQ(client.ioCount(),
              static_cast<uint64_t>(reads + writes));
    // No loss on a healthy fabric: nothing dropped, no retransmits.
    EXPECT_EQ(fabric.packetsDropped(), 0u);
    EXPECT_EQ(client.retransmitCount(), 0u);
    // Cache lookups happened for every read block.
    EXPECT_EQ(server.cache()->hits() + server.cache()->misses(),
              static_cast<uint64_t>(reads));
}

/** Registration balance: batched dereg retires every region. */
TEST(Conservation, RegistrationsFullyRetired)
{
    vi::ViCosts costs;
    vi::MemoryRegistry registry(costs, 10);
    dsa::RegCache cache(registry, true, true);
    std::vector<vi::MemHandle> handles;
    for (int i = 0; i < 1000; ++i) {
        auto reg = cache.acquire(0x100000 + i * 0x4000, 8192);
        ASSERT_TRUE(reg);
        handles.push_back(reg->handle);
        // Complete with a lag of 5 I/Os.
        if (handles.size() > 5) {
            cache.release(handles.front());
            handles.erase(handles.begin());
        }
    }
    for (auto &handle : handles)
        cache.release(handle);
    // Everything allocated into full regions retired; 1000 I/Os into
    // regions of 10 = 100 region ops.
    EXPECT_EQ(registry.regionDeregCount(), 100u);
    EXPECT_EQ(registry.liveEntries(), 0u);
}

} // namespace
} // namespace v3sim
