/**
 * @file
 * Unit tests for the local-disk baseline: kernel-path accounting,
 * interrupt coalescing, and concurrency over a striped local array.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dsa/local_backend.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"

namespace v3sim::dsa
{
namespace
{

using sim::Addr;
using sim::Task;

class LocalBackendTestFixture : public ::testing::Test
{
  protected:
    LocalBackendTestFixture()
        : sim_(9),
          host_(sim_, osmodel::NodeConfig{.name = "db", .cpus = 4})
    {
        for (int i = 0; i < 4; ++i) {
            disks_.push_back(std::make_unique<disk::Disk>(
                sim_, disk::DiskSpec::scsi10k(), sim_.forkRng(),
                "d" + std::to_string(i)));
            parts_.push_back(
                std::make_unique<disk::SingleDiskVolume>(
                    *disks_.back()));
            part_ptrs_.push_back(parts_.back().get());
        }
        volume_ = std::make_unique<disk::StripeVolume>(part_ptrs_,
                                                       64 * 1024);
        local_ = std::make_unique<LocalBackend>(host_, *volume_);
    }

    sim::Simulation sim_;
    osmodel::Node host_;
    std::vector<std::unique_ptr<disk::Disk>> disks_;
    std::vector<std::unique_ptr<disk::SingleDiskVolume>> parts_;
    std::vector<disk::Volume *> part_ptrs_;
    std::unique_ptr<disk::StripeVolume> volume_;
    std::unique_ptr<LocalBackend> local_;
};

TEST_F(LocalBackendTestFixture, LatencyDominatedByDisk)
{
    const Addr buf = host_.memory().allocate(8192);
    sim::spawn([](LocalBackend &dev, Addr b) -> Task<> {
        for (int i = 0; i < 50; ++i)
            co_await dev.read(static_cast<uint64_t>(i) * 999424,
                              8192, b);
    }(*local_, buf));
    sim_.run();
    // Random-ish 8K reads: milliseconds, not microseconds.
    EXPECT_GT(local_->latency().mean(), 1e6);
    EXPECT_LT(local_->latency().mean(), 20e6);
    EXPECT_EQ(local_->ioCount(), 50u);
}

TEST_F(LocalBackendTestFixture, InterruptCoalescingUnderConcurrency)
{
    // A controller-cache-fast device: completions cluster within the
    // coalescing window, so interrupts must merge.
    disk::DiskSpec fast;
    fast.model = "ramdisk";
    fast.rpm = 60000; // 1 ms rotation, ~immaterial with TCQ depth
    fast.track_to_track_seek = sim::usecs(1);
    fast.full_stroke_seek = sim::usecs(2);
    fast.media_rate_bps = 1e9;
    fast.controller_overhead = sim::usecs(2);
    disk::Disk disk(sim_, fast, sim_.forkRng(), "fast");
    disk::SingleDiskVolume volume(disk);
    LocalBackend fast_local(host_, volume);

    const int kIos = 64;
    int done = 0;
    for (int w = 0; w < kIos; ++w) {
        sim::spawn([](LocalBackend &dev, osmodel::Node &node, int id,
                      int &count) -> Task<> {
            const Addr buf = node.memory().allocate(8192);
            co_await dev.read(static_cast<uint64_t>(id) * 8192,
                              8192, buf);
            ++count;
        }(fast_local, host_, w, done));
    }
    sim_.run();
    EXPECT_EQ(done, kIos);
    // Coalescing: strictly fewer interrupts than completions.
    EXPECT_LT(fast_local.interruptCount(), fast_local.ioCount());
    EXPECT_GT(fast_local.interruptCount(), 0u);
}

TEST_F(LocalBackendTestFixture, KernelPathCostsPerIo)
{
    const Addr buf = host_.memory().allocate(8192);
    sim::spawn([](LocalBackend &dev, Addr b) -> Task<> {
        co_await dev.read(0, 8192, b);
    }(*local_, buf));
    sim_.run();
    // One I/O: syscall + IRP both ways + pin/unpin + HBA + interrupt
    // + context switch — tens of microseconds of host CPU.
    const sim::Tick busy = host_.cpus().totalBusyTime();
    EXPECT_GT(busy, sim::usecs(15));
    EXPECT_LT(busy, sim::usecs(60));
    // No DSA or VI time on the local path.
    EXPECT_EQ(host_.cpus().busyTime(osmodel::CpuCat::Dsa), 0);
    EXPECT_EQ(host_.cpus().busyTime(osmodel::CpuCat::Vi), 0);
}

TEST_F(LocalBackendTestFixture, StripedParallelismAcrossSpindles)
{
    // 16 concurrent single-block reads spread over 4 spindles finish
    // far faster than 16 serialized ones would.
    sim::Tick elapsed = 0;
    sim::WaitGroup group;
    const sim::Tick start = sim_.now();
    for (int i = 0; i < 16; ++i) {
        group.add();
        sim::spawn([](LocalBackend &dev, osmodel::Node &node, int id,
                      sim::WaitGroup &g) -> Task<> {
            const Addr buf = node.memory().allocate(8192);
            // One stripe unit apart: spreads round-robin over the
            // four spindles.
            co_await dev.read(static_cast<uint64_t>(id) * 65536,
                              8192, buf);
            g.done();
        }(*local_, host_, i, group));
    }
    sim::spawn([](sim::Simulation &s, sim::WaitGroup &g,
                  sim::Tick begin, sim::Tick &out) -> Task<> {
        co_await g.wait();
        out = s.now() - begin;
    }(sim_, group, start, elapsed));
    sim_.run();

    const double mean_service =
        (disks_[0]->serviceStats().sum() +
         disks_[1]->serviceStats().sum() +
         disks_[2]->serviceStats().sum() +
         disks_[3]->serviceStats().sum()) /
        16.0;
    // Wall time well under 16 serialized services.
    EXPECT_LT(static_cast<double>(elapsed), 10 * mean_service);
}

TEST_F(LocalBackendTestFixture, FailedMechanismReportsFalse)
{
    const Addr buf = host_.memory().allocate(8192);
    bool ok = true;
    sim::spawn([](LocalBackend &dev, Addr b, bool &out) -> Task<> {
        out = co_await dev.read(dev.capacity() + 4096, 8192, b);
    }(*local_, buf, ok));
    sim_.run();
    EXPECT_FALSE(ok);
}

} // namespace
} // namespace v3sim::dsa
