/**
 * @file
 * Tests for structured fault injection and DSA's resilience to each
 * pattern: counted drops, random loss, blackout windows, and
 * scheduled connection breaks — all while a workload keeps running
 * and every I/O eventually completes correctly.
 */

#include <gtest/gtest.h>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"
#include "vi/fault_injector.hh"

namespace v3sim::vi
{
namespace
{

using sim::Addr;
using sim::Task;

class FaultInjectorTest : public ::testing::Test
{
  protected:
    FaultInjectorTest()
        : sim_(123),
          fabric_(sim_.queue()),
          injector_(sim_, fabric_),
          host_(sim_, osmodel::NodeConfig{.name = "db", .cpus = 4})
    {
        storage::V3ServerConfig config;
        config.cache_bytes = 4ull * 1024 * 1024;
        server_ = std::make_unique<storage::V3Server>(sim_, fabric_,
                                                      config);
        auto disks = server_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 2);
        volume_ = server_->volumeManager().addStripedVolume(
            disks, 64 * 1024);
        server_->start();
        nic_ = std::make_unique<ViNic>(sim_, fabric_, host_.memory(),
                                       "nic");

        dsa::DsaConfig dsa_config;
        dsa_config.retransmit_timeout = sim::msecs(8);
        dsa_config.max_retransmits = 3;
        dsa_config.reconnect_delay = sim::msecs(2);
        client_ = std::make_unique<dsa::DsaClient>(
            dsa::DsaImpl::Cdsa, host_, *nic_, server_->nic().port(),
            volume_, dsa_config);
        bool ok = false;
        sim::spawn([](dsa::DsaClient &c, bool &out) -> Task<> {
            out = co_await c.connect();
        }(*client_, ok));
        sim_.run();
        EXPECT_TRUE(ok);
        buffer_ = host_.memory().allocate(8192);
    }

    /** Runs @p count sequential I/Os; returns how many succeeded. */
    int
    runIos(int count)
    {
        int succeeded = 0;
        sim::spawn([](sim::Simulation &s, dsa::DsaClient &c, Addr buf,
                      int n, int &out) -> Task<> {
            for (int i = 0; i < n; ++i) {
                const uint64_t offset =
                    static_cast<uint64_t>(i % 16) * 8192;
                const bool ok =
                    i % 3 == 0
                        ? co_await c.write(offset, 8192, buf)
                        : co_await c.read(offset, 8192, buf);
                if (ok)
                    ++out;
                co_await s.sleep(sim::usecs(500));
            }
        }(sim_, *client_, buffer_, count, succeeded));
        sim_.run();
        return succeeded;
    }

    sim::Simulation sim_;
    net::Fabric fabric_;
    FaultInjector injector_;
    osmodel::Node host_;
    std::unique_ptr<storage::V3Server> server_;
    uint32_t volume_ = 0;
    std::unique_ptr<ViNic> nic_;
    std::unique_ptr<dsa::DsaClient> client_;
    Addr buffer_ = sim::kNullAddr;
};

TEST_F(FaultInjectorTest, CountedDropsAreRecovered)
{
    injector_.dropNext(4);
    EXPECT_EQ(runIos(30), 30);
    EXPECT_EQ(injector_.droppedCount(), 4u);
    EXPECT_GE(client_->retransmitCount(), 1u);
}

TEST_F(FaultInjectorTest, DirectionalDropOnlyHitsTarget)
{
    // Drop only server-bound packets; server->client traffic flows.
    injector_.dropNext(2, server_->nic().port());
    EXPECT_EQ(runIos(20), 20);
    EXPECT_EQ(injector_.droppedCount(), 2u);
}

TEST_F(FaultInjectorTest, RandomLossSustained)
{
    injector_.setLossRate(0.02);
    const int ok = runIos(60);
    injector_.clear();
    EXPECT_EQ(ok, 60);
    EXPECT_GT(injector_.droppedCount(), 0u);
    EXPECT_GE(client_->retransmitCount(), 1u);
}

TEST_F(FaultInjectorTest, BlackoutWindowThenRecovery)
{
    // Nothing gets through for 20 ms in the middle of the run.
    injector_.blackout(sim_.now() + sim::msecs(5),
                       sim_.now() + sim::msecs(25));
    EXPECT_EQ(runIos(40), 40);
    EXPECT_GT(injector_.droppedCount(), 0u);
}

TEST_F(FaultInjectorTest, ScheduledBreakTriggersReconnect)
{
    injector_.scheduleBreak(sim_.now() + sim::msecs(3), *nic_, 0);
    EXPECT_EQ(runIos(25), 25);
    EXPECT_EQ(injector_.breakCount(), 1u);
    EXPECT_GE(client_->reconnectCount(), 1u);
}

TEST_F(FaultInjectorTest, ClearStopsInjection)
{
    injector_.setLossRate(1.0);
    injector_.clear();
    EXPECT_EQ(runIos(10), 10);
    EXPECT_EQ(client_->retransmitCount(), 0u);
}

TEST_F(FaultInjectorTest, WritesStayExactlyOnceUnderLoss)
{
    injector_.setLossRate(0.03);
    const int ok = runIos(60);
    injector_.clear();
    EXPECT_EQ(ok, 60);
    // 1/3 of the 60 I/Os are writes; despite retransmissions the
    // server executed each exactly once.
    EXPECT_EQ(server_->writeCount(), 20u);
}

TEST_F(FaultInjectorTest, ClearCancelsScheduled)
{
    // Arm a connection break and a whole node outage in the near
    // future, then clear() before any of them fire: the run must be
    // completely fault-free, with no crash, restart, break or
    // reconnect ever happening.
    injector_.scheduleBreak(sim_.now() + sim::msecs(2), *nic_, 0);
    injector_.scheduleNodeOutage(sim_.now() + sim::msecs(4),
                                 sim_.now() + sim::msecs(8),
                                 *server_);
    injector_.clear();
    EXPECT_EQ(runIos(20), 20);
    EXPECT_EQ(injector_.breakCount(), 0u);
    EXPECT_EQ(injector_.nodeCrashCount(), 0u);
    EXPECT_EQ(injector_.nodeRestartCount(), 0u);
    EXPECT_EQ(server_->crashCount(), 0u);
    EXPECT_EQ(server_->restartCount(), 0u);
    EXPECT_EQ(client_->reconnectCount(), 0u);
    EXPECT_EQ(client_->retransmitCount(), 0u);
}

TEST_F(FaultInjectorTest, CorruptedPacketsRecoveredByDigests)
{
    // Corruption delivers the packet (the link CRC "passed"); only
    // the end-to-end digest/taint machinery can tell, and recovery
    // is by request-level retransmission, exactly as for loss.
    injector_.corruptNext(4);
    EXPECT_EQ(runIos(30), 30);
    EXPECT_EQ(injector_.corruptedCount(), 4u);
    EXPECT_EQ(injector_.droppedCount(), 0u);
    EXPECT_GE(client_->retransmitCount(), 1u);
}

TEST_F(FaultInjectorTest, NodeOutageRiddenThroughByReconnect)
{
    // Crash the node for 35 ms mid-run. The client exhausts
    // retransmissions (~24 ms), fails connection attempts against
    // the down port, and reconnects once the node restarts — without
    // the generous default attempt budget running out, so the
    // workload rides through the outage.
    injector_.scheduleNodeOutage(sim_.now() + sim::msecs(5),
                                 sim_.now() + sim::msecs(40),
                                 *server_);
    EXPECT_EQ(runIos(60), 60);
    EXPECT_EQ(injector_.nodeCrashCount(), 1u);
    EXPECT_EQ(injector_.nodeRestartCount(), 1u);
    EXPECT_EQ(server_->crashCount(), 1u);
    EXPECT_EQ(server_->restartCount(), 1u);
    EXPECT_GE(client_->reconnectCount(), 1u);
}

TEST_F(FaultInjectorTest, CrashedNodeRefusesNewConnections)
{
    server_->crash();
    dsa::DsaConfig impatient;
    impatient.connect_timeout = sim::msecs(5);
    auto nic2 = std::make_unique<ViNic>(sim_, fabric_,
                                        host_.memory(), "nic2");
    auto client2 = std::make_unique<dsa::DsaClient>(
        dsa::DsaImpl::Cdsa, host_, *nic2, server_->nic().port(),
        volume_, impatient);
    bool ok = true;
    sim::spawn([](dsa::DsaClient &c, bool &out) -> Task<> {
        out = co_await c.connect();
    }(*client2, ok));
    sim_.run();
    EXPECT_FALSE(ok);

    server_->restart();
    sim::spawn([](dsa::DsaClient &c, bool &out) -> Task<> {
        out = co_await c.revive();
    }(*client2, ok));
    sim_.run();
    EXPECT_TRUE(ok);
}

TEST_F(FaultInjectorTest, DuplicateResponsesAfterRetransmissionIgnored)
{
    // A client whose retransmit timer is shorter than a disk write:
    // the server answers the original *and* dedup-answers the
    // retransmission, so duplicate responses reach the client. Each
    // I/O must complete exactly once (a double completion would
    // assert), and the dedup filter keeps every write exactly-once.
    dsa::DsaConfig eager;
    eager.retransmit_timeout = sim::msecs(2);
    eager.max_retransmits = 12; // patient enough to never reconnect
    auto nic2 = std::make_unique<ViNic>(sim_, fabric_,
                                        host_.memory(), "nic2");
    auto client2 = std::make_unique<dsa::DsaClient>(
        dsa::DsaImpl::Cdsa, host_, *nic2, server_->nic().port(),
        volume_, eager);
    bool connected = false;
    sim::spawn([](dsa::DsaClient &c, bool &out) -> Task<> {
        out = co_await c.connect();
    }(*client2, connected));
    sim_.run();
    ASSERT_TRUE(connected);

    const uint64_t writes_before = server_->writeCount();
    int succeeded = 0;
    sim::spawn([](sim::Simulation &s, dsa::DsaClient &c, Addr buf,
                  int &out) -> Task<> {
        for (int i = 0; i < 30; ++i) {
            const uint64_t offset =
                static_cast<uint64_t>(i % 16) * 8192;
            const bool ok =
                i % 3 == 0 ? co_await c.write(offset, 8192, buf)
                           : co_await c.read(offset, 8192, buf);
            if (ok)
                ++out;
            co_await s.sleep(sim::usecs(500));
        }
    }(sim_, *client2, buffer_, succeeded));
    sim_.run();

    EXPECT_EQ(succeeded, 30);
    EXPECT_GE(client2->retransmitCount(), 1u);
    EXPECT_GE(server_->retransmitHits(), 1u);
    EXPECT_EQ(server_->writeCount() - writes_before, 10u);
    EXPECT_EQ(client2->reconnectCount(), 0u);
}

/** Builds a full stack, runs a workload through a scripted node
 *  outage, and returns the final metrics snapshot. */
std::string
runScriptedOutage(uint64_t seed)
{
    sim::Simulation sim(seed);
    net::Fabric fabric(sim.queue());
    FaultInjector injector(sim, fabric);
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    storage::V3ServerConfig config;
    config.cache_bytes = 4ull * 1024 * 1024;
    storage::V3Server server(sim, fabric, config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "d", 2);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks, 64 * 1024);
    server.start();
    ViNic nic(sim, fabric, host.memory(), "nic");
    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(8);
    dsa_config.max_retransmits = 3;
    dsa_config.reconnect_delay = sim::msecs(2);
    dsa::DsaClient client(dsa::DsaImpl::Cdsa, host, nic,
                          server.nic().port(), volume, dsa_config);
    injector.setLossRate(0.01);
    injector.scheduleNodeOutage(sim::msecs(10), sim::msecs(45),
                                server);
    const sim::Addr buffer = host.memory().allocate(8192);
    sim::spawn([](sim::Simulation &s, dsa::DsaClient &c,
                  sim::Addr buf) -> Task<> {
        if (!co_await c.connect())
            co_return;
        for (int i = 0; i < 50; ++i) {
            const uint64_t offset =
                static_cast<uint64_t>(i % 16) * 8192;
            if (i % 3 == 0)
                co_await c.write(offset, 8192, buf);
            else
                co_await c.read(offset, 8192, buf);
            co_await s.sleep(sim::usecs(500));
        }
    }(sim, client, buffer));
    sim.run();
    return sim.metrics().toJson();
}

TEST(FaultInjectorDeterminism, SameSeedSameScheduleSameMetrics)
{
    // Two identical runs — same seed, same node-fault schedule, same
    // loss rate — must produce byte-identical metric snapshots: the
    // failure machinery introduces no hidden nondeterminism.
    const std::string a = runScriptedOutage(202);
    const std::string b = runScriptedOutage(202);
    EXPECT_EQ(a, b);

    // A different seed shifts the random loss, so the snapshots
    // should differ (guards against toJson() ignoring the run).
    const std::string c = runScriptedOutage(203);
    EXPECT_NE(a, c);
}

/**
 * Builds a full stack and runs a fixed workload with wire corruption
 * at @p corrupt_rate plus one cold latent sector error, returning the
 * final metrics snapshot. With @p arm_then_clear, the run is instead
 * fault-free but a corruption rule is set and cleared first — which
 * must leave the run byte-identical to one that never armed it.
 */
std::string
runScriptedCorruption(uint64_t seed, double corrupt_rate,
                      bool arm_then_clear = false)
{
    sim::Simulation sim(seed);
    net::Fabric fabric(sim.queue());
    FaultInjector injector(sim, fabric);
    osmodel::Node host(sim, osmodel::NodeConfig{.name = "db",
                                                .cpus = 4});
    storage::V3ServerConfig config;
    config.cache_bytes = 4ull * 1024 * 1024;
    storage::V3Server server(sim, fabric, config);
    auto disks = server.diskManager().addDisks(
        disk::DiskSpec::scsi10k(), "d", 2);
    const uint32_t volume =
        server.volumeManager().addStripedVolume(disks, 64 * 1024);
    server.start();
    ViNic nic(sim, fabric, host.memory(), "nic");
    dsa::DsaConfig dsa_config;
    dsa_config.retransmit_timeout = sim::msecs(8);
    dsa_config.max_retransmits = 3;
    dsa_config.reconnect_delay = sim::msecs(2);
    dsa::DsaClient client(dsa::DsaImpl::Cdsa, host, nic,
                          server.nic().port(), volume, dsa_config);
    if (arm_then_clear) {
        // Fork the lazy corruption RNG, then fully disarm it.
        injector.setCorruptRate(0.5);
        injector.corruptNext(3);
        injector.clear();
    } else if (corrupt_rate > 0.0) {
        injector.setCorruptRate(corrupt_rate);
        // Cold latent damage outside the workload's footprint: the
        // injection itself must be deterministic and inert.
        injector.injectLatentError(server.diskManager().disk(0),
                                   128 * 1024, 8192);
    }
    const sim::Addr buffer = host.memory().allocate(8192);
    sim::spawn([](sim::Simulation &s, dsa::DsaClient &c,
                  sim::Addr buf) -> Task<> {
        if (!co_await c.connect())
            co_return;
        for (int i = 0; i < 50; ++i) {
            const uint64_t offset =
                static_cast<uint64_t>(i % 16) * 8192;
            if (i % 3 == 0)
                co_await c.write(offset, 8192, buf);
            else
                co_await c.read(offset, 8192, buf);
            co_await s.sleep(sim::usecs(500));
        }
    }(sim, client, buffer));
    sim.run();
    return sim.metrics().toJson();
}

TEST(FaultInjectorDeterminism, SameSeedSameCorruptionSameMetrics)
{
    // The corruption process (its own lazily forked RNG stream) must
    // be as reproducible as the loss process: identical seeds give
    // byte-identical metrics, different seeds corrupt differently.
    const std::string a = runScriptedCorruption(31, 0.05);
    const std::string b = runScriptedCorruption(31, 0.05);
    EXPECT_EQ(a, b);

    const std::string c = runScriptedCorruption(32, 0.05);
    EXPECT_NE(a, c);
}

TEST(FaultInjectorDeterminism, ClearedCorruptionRuleDoesNotPerturb)
{
    // Arming a corruption rule forks the injector's corruption RNG;
    // clearing it before any packet flows must leave the run
    // indistinguishable from one where the rule never existed — the
    // fork draws from no stream any other component uses.
    const std::string pristine = runScriptedCorruption(31, 0.0);
    const std::string armed_cleared =
        runScriptedCorruption(31, 0.0, /*arm_then_clear=*/true);
    EXPECT_EQ(pristine, armed_cleared);
}

} // namespace
} // namespace v3sim::vi
