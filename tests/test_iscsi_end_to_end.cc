/**
 * @file
 * End-to-end integration tests for the iSCSI rival transport: an
 * initiator session against a live target over the TCP model. Covers
 * the data round trip, RFC 3720 digest recovery from in-flight
 * damage, the no-silent-corruption guarantee, verify-on-read latent
 * media errors, and the Testbed's Iscsi backend wiring.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "iscsi/initiator.hh"
#include "iscsi/target.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "scenarios/testbed.hh"
#include "sim/simulation.hh"

namespace v3sim::iscsi
{
namespace
{

using osmodel::Node;
using osmodel::NodeConfig;
using sim::Addr;
using sim::Task;

constexpr uint64_t kIo = 8192;

/** Host + one cacheless target (every read hits the platter, so
 *  verify-on-read is always exercised). */
class IscsiEndToEnd : public ::testing::Test
{
  protected:
    IscsiEndToEnd()
        : sim_(12345),
          fabric_(sim_.queue()),
          host_(sim_, NodeConfig{.name = "db", .cpus = 4})
    {
        TargetConfig target_config;
        target_config.name = "tgt";
        target_config.cache_bytes = 0;
        target_ = std::make_unique<Target>(sim_, fabric_,
                                           target_config);
        auto disks = target_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "tgt.d", 1);
        const uint32_t volume =
            target_->volumeManager().addStripedVolume(disks,
                                                      64 * 1024);
        target_->start();

        InitiatorConfig init_config;
        init_config.volume = volume;
        initiator_ = std::make_unique<Initiator>(host_, fabric_,
                                                 init_config);
        bool ok = false;
        sim::spawn([](Initiator &init, net::PortId port,
                      bool &out) -> Task<> {
            out = co_await init.connect(port);
        }(*initiator_, target_->port(), ok));
        sim_.run();
        EXPECT_TRUE(ok);
        EXPECT_GT(initiator_->capacity(), 0u);
    }

    Addr
    patternBuffer(uint64_t len, uint8_t salt)
    {
        const Addr buffer = host_.memory().allocate(len);
        std::vector<uint8_t> data(len);
        for (uint64_t i = 0; i < len; ++i)
            data[i] = static_cast<uint8_t>((i * 7 + salt) & 0xFF);
        host_.memory().write(buffer, data.data(), len);
        return buffer;
    }

    bool
    checkPattern(Addr buffer, uint64_t len, uint8_t salt)
    {
        std::vector<uint8_t> data(len);
        host_.memory().read(buffer, data.data(), len);
        for (uint64_t i = 0; i < len; ++i) {
            if (data[i] != static_cast<uint8_t>((i * 7 + salt) & 0xFF))
                return false;
        }
        return true;
    }

    /** Runs one I/O to completion and returns its status. */
    bool
    runIo(bool is_write, uint64_t offset, uint64_t len, Addr buffer)
    {
        bool ok = false;
        sim::spawn([](Initiator &init, bool is_write, uint64_t offset,
                      uint64_t len, Addr buffer, bool &out) -> Task<> {
            out = is_write
                ? co_await init.write(offset, len, buffer)
                : co_await init.read(offset, len, buffer);
        }(*initiator_, is_write, offset, len, buffer, ok));
        sim_.run();
        return ok;
    }

    sim::Simulation sim_;
    net::Fabric fabric_;
    Node host_;
    std::unique_ptr<Target> target_;
    std::unique_ptr<Initiator> initiator_;
};

TEST_F(IscsiEndToEnd, ReadWriteRoundTrip)
{
    const Addr wbuf = patternBuffer(kIo, 3);
    EXPECT_TRUE(runIo(true, 0, kIo, wbuf));
    const Addr rbuf = host_.memory().allocate(kIo);
    EXPECT_TRUE(runIo(false, 0, kIo, rbuf));
    EXPECT_TRUE(checkPattern(rbuf, kIo, 3));
    EXPECT_EQ(target_->writeCount(), 1u);
    EXPECT_EQ(target_->readCount(), 1u);
    EXPECT_EQ(initiator_->errorCount(), 0u);
    EXPECT_GT(initiator_->latency().count(), 0u);
}

TEST_F(IscsiEndToEnd, DigestMismatchRetransmit)
{
    // Damage one data segment of the write command in flight. TCP's
    // modeled Internet checksum misses it (the packet is *delivered*
    // tainted); the target's data digest catches it and answers
    // DigestError, and the initiator retries the whole command with
    // fresh data — the write still lands correctly.
    bool corrupted = false;
    fabric_.setCorruptFilter([&](const net::Packet &packet) {
        if (!corrupted && packet.wire_bytes > 500) {
            corrupted = true;
            return true;
        }
        return false;
    });
    const Addr wbuf = patternBuffer(kIo, 5);
    EXPECT_TRUE(runIo(true, 0, kIo, wbuf));
    EXPECT_TRUE(corrupted);
    EXPECT_GE(initiator_->digestRetryCount(), 1u);
    EXPECT_GE(target_->digestMismatchCount(), 1u);
    EXPECT_EQ(initiator_->errorCount(), 0u);

    fabric_.setCorruptFilter(nullptr);
    const Addr rbuf = host_.memory().allocate(kIo);
    EXPECT_TRUE(runIo(false, 0, kIo, rbuf));
    EXPECT_TRUE(checkPattern(rbuf, kIo, 5));
}

TEST_F(IscsiEndToEnd, ZeroUndetectedCorruption)
{
    // Persistently damage every thirteenth data segment (an 8 KiB
    // I/O is six segments, so the corruption slides across attempts
    // and some retries get through clean). Commands may retry or
    // ultimately fail, but no I/O reported Good may ever carry wrong
    // bytes — that is the end-to-end digest argument.
    uint32_t data_packets = 0;
    fabric_.setCorruptFilter([&](const net::Packet &packet) {
        return packet.wire_bytes > 500 && ++data_packets % 13 == 0;
    });
    int good_reads = 0;
    for (int i = 0; i < 6; ++i) {
        const uint64_t offset = static_cast<uint64_t>(i) * kIo;
        const uint8_t salt = static_cast<uint8_t>(i + 1);
        const Addr wbuf = patternBuffer(kIo, salt);
        if (!runIo(true, offset, kIo, wbuf))
            continue;
        const Addr rbuf = host_.memory().allocate(kIo);
        if (!runIo(false, offset, kIo, rbuf))
            continue;
        ++good_reads;
        EXPECT_TRUE(checkPattern(rbuf, kIo, salt))
            << "silent corruption at offset " << offset;
    }
    EXPECT_GT(good_reads, 0);
    EXPECT_GT(initiator_->digestRetryCount(), 0u);
}

TEST_F(IscsiEndToEnd, LatentMediaError)
{
    // Committed data silently rots on the platter. Verify-on-read
    // catches it at the target, the command fails IntegrityError
    // (definitive — no retry), and the damage never reaches the
    // initiator's buffer as Good data.
    const Addr wbuf = patternBuffer(kIo, 9);
    ASSERT_TRUE(runIo(true, 0, kIo, wbuf));
    target_->diskManager().disk(0).store().markCorrupt(0, kIo);

    const Addr rbuf = host_.memory().allocate(kIo);
    EXPECT_FALSE(runIo(false, 0, kIo, rbuf));
    EXPECT_GE(target_->integrityErrorCount(), 1u);
    EXPECT_EQ(initiator_->errorCount(), 1u);
    EXPECT_EQ(initiator_->digestRetryCount(), 0u);
}

TEST(IscsiTestbed, TestbedIscsiBackend)
{
    // The Testbed's Iscsi backend: four targets striped behind the
    // initiators, reached through interrupt-driven TCP sessions.
    using scenarios::Backend;
    using scenarios::HostParams;
    using scenarios::StorageParams;
    StorageParams storage = StorageParams::midSize();
    storage.disks_per_node = 2;
    storage.cache_bytes_per_node = 4ull * 1024 * 1024;
    scenarios::Testbed bed(Backend::Iscsi, HostParams::midSize(),
                           storage);
    ASSERT_TRUE(bed.connectAll());
    ASSERT_EQ(bed.iscsiTargets().size(), 4u);
    ASSERT_EQ(bed.iscsiInitiators().size(), 4u);

    const uint64_t len = 64 * 1024; // crosses a stripe boundary
    const Addr buffer = bed.host().memory().allocate(len);
    bool ok = false;
    sim::spawn([](dsa::BlockDevice &dev, uint64_t len, Addr buffer,
                  bool &out) -> Task<> {
        out = co_await dev.write(0, len, buffer);
        if (out)
            out = co_await dev.read(0, len, buffer);
    }(bed.device(), len, buffer, ok));
    bed.sim().run();
    EXPECT_TRUE(ok);
    // The rival's signature: I/O completions arrive by interrupt.
    EXPECT_GT(bed.hostInterrupts(), 0u);
}

} // namespace
} // namespace v3sim::iscsi
