/**
 * @file
 * Unit tests for tools/simlint, the determinism-contract linter
 * (DESIGN.md §8). Two layers:
 *
 *  - fixture files under tools/simlint/fixtures/ (path injected as
 *    SIMLINT_FIXTURE_DIR): each known-bad file must produce exactly
 *    its annotated findings, and the known-good files none — so a
 *    rule that silently stops firing breaks the build, not just the
 *    lint;
 *  - inline lintSource() cases for the trickier lexer behavior
 *    (strings, raw strings, comments, multi-line declarations,
 *    companion-header semantics are covered via the fixtures' shapes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hh"

namespace v3sim::simlint
{
namespace
{

std::string
fixture(const std::string &name)
{
    return std::string(SIMLINT_FIXTURE_DIR) + "/" + name;
}

/** (line, rule) pairs, sorted, for exact-match assertions. */
std::vector<std::pair<int, std::string>>
lineRules(const std::vector<Finding> &findings)
{
    std::vector<std::pair<int, std::string>> out;
    for (const Finding &f : findings)
        out.emplace_back(f.line, f.rule);
    std::sort(out.begin(), out.end());
    return out;
}

using LineRules = std::vector<std::pair<int, std::string>>;

TEST(SimlintFixtures, WallClock)
{
    const auto got = lineRules(lintFile(fixture("bad_wall_clock.cc")));
    // v2 also rejects the includes themselves (banned-header).
    const LineRules want = {{2, "banned-header"},
                            {3, "banned-header"},
                            {4, "banned-header"},
                            {9, "wall-clock"},
                            {10, "wall-clock"},
                            {11, "wall-clock"},
                            {13, "wall-clock"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, RawRandom)
{
    const auto got = lineRules(lintFile(fixture("bad_raw_random.cc")));
    const LineRules want = {{4, "banned-header"},
                            {9, "raw-random"},
                            {10, "raw-random"},
                            {11, "raw-random"},
                            {12, "raw-random"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, UnorderedIter)
{
    const auto got =
        lineRules(lintFile(fixture("bad_unordered_iter.cc")));
    const LineRules want = {{22, "unordered-iter"},
                            {24, "unordered-iter"},
                            {26, "unordered-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, PtrMapIter)
{
    const auto got =
        lineRules(lintFile(fixture("bad_ptr_map_iter.cc")));
    const LineRules want = {{18, "ptr-map-iter"},
                            {20, "ptr-map-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, MetricName)
{
    const auto got =
        lineRules(lintFile(fixture("bad_metric_name.cc")));
    const LineRules want = {{13, "metric-name"},
                            {14, "metric-name"},
                            {15, "metric-name"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, MetricHandle)
{
    const auto got =
        lineRules(lintFile(fixture("bad_metric_lookup.cc")));
    // Lines 22/23: single-line chains; line 24: a chain wrapped
    // across lines reports at the lookup call. The bare lookup
    // (26), handle registration (28) and the annotated line (31)
    // must not fire.
    const LineRules want = {{22, "metric-handle"},
                            {23, "metric-handle"},
                            {24, "metric-handle"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, ReasonlessAnnotationIsAFinding)
{
    const auto got =
        lineRules(lintFile(fixture("bad_annotation.cc")));
    // The malformed annotations are findings AND fail to suppress.
    const LineRules want = {{9, "annotation"},
                            {10, "unordered-iter"},
                            {12, "annotation"},
                            {13, "unordered-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, FinalBandKey)
{
    const auto got =
        lineRules(lintFile(fixture("bad_final_band_key.cc")));
    // Pointer relational compare (13) and address-to-integer cast
    // (19); the member compares in the good twin must not fire.
    const LineRules want = {{13, "final-band-key"},
                            {19, "final-band-key"}};
    EXPECT_EQ(got, want);
    EXPECT_TRUE(
        lintFile(fixture("good_final_band_key.cc")).empty());
}

TEST(SimlintFixtures, RefCaptureEscape)
{
    const auto got =
        lineRules(lintFile(fixture("bad_ref_capture.cc")));
    // Direct-argument [&] (17), [&local] (18) and the EventFn
    // binding form (19). Value captures / [this] stay clean.
    const LineRules want = {{17, "ref-capture-escape"},
                            {18, "ref-capture-escape"},
                            {19, "ref-capture-escape"}};
    EXPECT_EQ(got, want);
    EXPECT_TRUE(lintFile(fixture("good_ref_capture.cc")).empty());
}

TEST(SimlintFixtures, RngDiscipline)
{
    const auto got = lineRules(lintFile(fixture("bad_rng_seed.cc")));
    // Brace-init member (10) and paren-init local (16); the
    // forkRng() twin stays clean.
    const LineRules want = {{10, "rng-discipline"},
                            {16, "rng-discipline"}};
    EXPECT_EQ(got, want);
    EXPECT_TRUE(
        lintFile(fixture("good_rng_discipline.cc")).empty());
}

TEST(SimlintFixtures, BannedHeader)
{
    const auto got =
        lineRules(lintFile(fixture("bad_banned_header.cc")));
    const LineRules want = {{3, "banned-header"},
                            {4, "banned-header"}};
    EXPECT_EQ(got, want);
    // allow-file with a reason sanctions the include.
    EXPECT_TRUE(lintFile(fixture("good_banned_header.cc")).empty());
}

TEST(SimlintFixtures, JustifiedAnnotationsSuppress)
{
    EXPECT_TRUE(lintFile(fixture("allowed_unordered_iter.cc")).empty());
}

TEST(SimlintFixtures, CleanFileIsClean)
{
    EXPECT_TRUE(lintFile(fixture("clean.cc")).empty());
}

TEST(Simlint, MissingFileReportsIoFinding)
{
    const auto findings = lintFile(fixture("no_such_file.cc"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "io");
}

// --- Inline lexer/matcher behavior ----------------------------------

TEST(Simlint, StringsAndCommentsDoNotTrigger)
{
    const std::string src =
        "// system_clock in a comment\n"
        "/* rand() in a block comment */\n"
        "const char *a = \"time(nullptr) inside a string\";\n"
        "const char *b = R\"(std::mt19937 in a raw string)\";\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(Simlint, WallClockInCodeTriggers)
{
    const auto findings = lintSource(
        "x.cc", "auto t = std::chrono::system_clock::now();\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "wall-clock");
    EXPECT_EQ(findings[0].line, 1);
}

TEST(Simlint, SimRandomEngineFileIsExemptFromRawRandom)
{
    // sim/random.* implements the sanctioned engine and may name
    // engine types; the same text elsewhere is a finding.
    const std::string src = "using engine = std::mt19937_64;\n";
    EXPECT_TRUE(lintSource("src/sim/random.hh", src).empty());
    EXPECT_FALSE(lintSource("src/dsa/foo.hh", src).empty());
}

TEST(Simlint, MultiLineDeclarationIsTracked)
{
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<int,\n"
        "                   int>\n"
        "    scattered;\n"
        "int f() { int n = 0; for (auto &[k, v] : scattered) n += v;"
        " return n; }\n";
    const auto findings = lintSource("x.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iter");
    EXPECT_EQ(findings[0].line, 5);
}

TEST(Simlint, MetricHandleSeesThroughArgumentParens)
{
    // Nested parens in the lookup argument must not derail the
    // chain matcher.
    const auto findings = lintSource(
        "x.cc",
        "void f(R &m) { m.counter(name(0, \"a.b\")).increment(); }\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "metric-handle");
}

TEST(Simlint, MetricHandleIgnoresHandleRecording)
{
    // Recording through an already-resolved handle is the sanctioned
    // idiom and carries no lookup call to flag.
    EXPECT_TRUE(
        lintSource("x.cc", "void f(H &ios) { ios.increment(); }\n")
            .empty());
}

TEST(Simlint, FormatFindingIsClickable)
{
    Finding f;
    f.file = "src/a.cc";
    f.line = 12;
    f.rule = "wall-clock";
    f.message = "m";
    EXPECT_EQ(formatFinding(f), "src/a.cc:12: [wall-clock] m");
}

TEST(Simlint, RepoSourcesAreCleanUnderTheirAnnotations)
{
    // Belt-and-braces alongside the simlint_repo ctest: the linter
    // run over its own implementation must be clean too.
    for (const char *src : {"../lexer.cc", "../symtab.cc",
                            "../rules.cc", "../lint.cc",
                            "../main.cc"}) {
        for (const Finding &f : lintFile(fixture(src)))
            ADD_FAILURE() << formatFinding(f);
    }
}

// --- Cross-TU pass (lintRepo) ---------------------------------------

TEST(SimlintRepo, MetricTypoIsFlaggedAcrossTus)
{
    // The registration and the typo'd lookup live in different TUs:
    // only the repo pass can see that "demo.total_io" was never
    // registered anywhere.
    const RepoReport report = lintRepo(
        {fixture("metric_defs.cc"), fixture("bad_metric_typo.cc")});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "metric-index");
    EXPECT_EQ(report.findings[0].file, fixture("bad_metric_typo.cc"));
    EXPECT_EQ(report.findings[0].line, 13);
    EXPECT_NE(report.findings[0].message.find("demo.total_io"),
              std::string::npos);
}

TEST(SimlintRepo, ResolvableLookupsAreClean)
{
    // Exact path, uniquePrefix() base and suffix-fragment matches
    // all resolve; no finding.
    const RepoReport report =
        lintRepo({fixture("metric_defs.cc"),
                  fixture("good_metric_lookup.cc")});
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);
}

TEST(SimlintRepo, DuplicateRegistrationIsFlagged)
{
    const RepoReport report = lintRepo(
        {fixture("metric_defs.cc"), fixture("bad_metric_dup.cc")});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].rule, "metric-index");
    EXPECT_NE(report.findings[0].message.find("already registered"),
              std::string::npos);
}

TEST(SimlintRepo, AliasBlindSpotNeedsCrossTu)
{
    // Per-file analysis cannot resolve net::SeqMap (the alias lives
    // in another TU): the v1 blind spot.
    EXPECT_TRUE(lintFile(fixture("bad_alias_iter.cc")).empty());
    // The repo pass resolves it through the global alias table.
    const RepoReport report = lintRepo(
        {fixture("alias_types.hh"), fixture("bad_alias_iter.cc")});
    const auto got = lineRules(report.findings);
    const LineRules want = {{15, "unordered-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintRepo, BannedHeaderBlastRadiusIsAttributed)
{
    const RepoReport report = lintRepo(
        {fixture("banned_hdr.hh"), fixture("uses_banned_hdr.cc")});
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].file, fixture("banned_hdr.hh"));
    EXPECT_EQ(report.findings[0].line, 6);
    EXPECT_EQ(report.findings[0].rule, "banned-header");
    EXPECT_NE(report.findings[0].message.find(
                  "pulled in transitively by 1 scanned file"),
              std::string::npos);
}

TEST(SimlintRepo, SuppressionsAreInventoried)
{
    const RepoReport report =
        lintRepo({fixture("good_banned_header.cc")});
    EXPECT_TRUE(report.findings.empty());
    ASSERT_EQ(report.suppressions.size(), 1u);
    EXPECT_EQ(report.suppressions[0].rule, "banned-header");
    EXPECT_TRUE(report.suppressions[0].file_scope);
    EXPECT_FALSE(report.suppressions[0].reason.empty());
}

TEST(SimlintRepo, JsonReportIsWellFormed)
{
    const RepoReport report = lintRepo(
        {fixture("metric_defs.cc"), fixture("bad_metric_typo.cc"),
         fixture("good_banned_header.cc")});
    const std::string json = reportToJson(report);
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"metric-index\""),
              std::string::npos);
    EXPECT_NE(json.find("\"suppression_counts\""),
              std::string::npos);
    EXPECT_NE(json.find("\"banned-header\": 1"), std::string::npos);
    // Finding messages embed quoted paths; they must be escaped.
    EXPECT_NE(json.find("\\\"demo.total_io\\\""),
              std::string::npos);
}

// --- Suppression ratchet --------------------------------------------

RepoReport
reportWithAllows(const std::vector<std::string> &rules)
{
    RepoReport r;
    int line = 1;
    for (const std::string &rule : rules)
        r.suppressions.push_back(
            {"a.cc", line++, rule, "reason", false});
    return r;
}

TEST(SimlintRatchet, OkAtOrBelowBaseline)
{
    const RepoReport r =
        reportWithAllows({"wall-clock", "wall-clock"});
    EXPECT_TRUE(checkRatchet(r, "total 2\nwall-clock 2\n").ok);
    // Below baseline passes, with a tightening note.
    const RatchetResult slack =
        checkRatchet(r, "total 5\nwall-clock 3\nmetric-handle 2\n");
    EXPECT_TRUE(slack.ok);
    EXPECT_NE(slack.detail.find("tightened"), std::string::npos);
}

TEST(SimlintRatchet, FailsAboveBaseline)
{
    const RepoReport r =
        reportWithAllows({"wall-clock", "wall-clock"});
    const RatchetResult res =
        checkRatchet(r, "total 2\nwall-clock 1\n");
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("wall-clock"), std::string::npos);
}

TEST(SimlintRatchet, RuleAbsentFromBaselineCountsAgainstZero)
{
    const RepoReport r = reportWithAllows({"rng-discipline"});
    EXPECT_FALSE(checkRatchet(r, "# empty baseline\n").ok);
}

TEST(SimlintRatchet, MalformedBaselineFails)
{
    const RepoReport r = reportWithAllows({});
    EXPECT_FALSE(checkRatchet(r, "wall-clock lots\n").ok);
}

TEST(SimlintRatchet, SummaryRoundTripsThroughChecker)
{
    // The generated summary always passes as its own baseline: the
    // documented way to regenerate after removing an allow.
    const RepoReport r = reportWithAllows(
        {"wall-clock", "metric-handle", "metric-handle"});
    const RatchetResult res =
        checkRatchet(r, suppressionSummary(r));
    EXPECT_TRUE(res.ok);
    EXPECT_NE(res.detail.find("ratchet OK"), std::string::npos);
}

// --- Whole-repo sweep (mirrors the simlint_repo ctest) --------------

TEST(SimlintRepo, WholeTreeIsCleanAndWithinRatchet)
{
    const std::string repo = SIMLINT_REPO_DIR;
    std::vector<std::string> missing;
    const std::vector<std::string> files = collectInputs(
        {repo + "/src", repo + "/bench", repo + "/tests",
         repo + "/tools", repo + "/examples"},
        &missing);
    EXPECT_TRUE(missing.empty());
    ASSERT_GT(files.size(), 100u);
    // The walk must skip known-bad fixture trees.
    for (const std::string &f : files)
        ASSERT_EQ(f.find("/fixtures/"), std::string::npos) << f;

    const RepoReport report = lintRepo(files);
    for (const Finding &f : report.findings)
        ADD_FAILURE() << formatFinding(f);

    std::ifstream baseline(repo +
                           "/tools/simlint/suppressions_baseline.txt");
    ASSERT_TRUE(baseline.good());
    std::ostringstream text;
    text << baseline.rdbuf();
    const RatchetResult res = checkRatchet(report, text.str());
    EXPECT_TRUE(res.ok) << res.detail;
}

} // namespace
} // namespace v3sim::simlint
