/**
 * @file
 * Unit tests for tools/simlint, the determinism-contract linter
 * (DESIGN.md §8). Two layers:
 *
 *  - fixture files under tools/simlint/fixtures/ (path injected as
 *    SIMLINT_FIXTURE_DIR): each known-bad file must produce exactly
 *    its annotated findings, and the known-good files none — so a
 *    rule that silently stops firing breaks the build, not just the
 *    lint;
 *  - inline lintSource() cases for the trickier lexer behavior
 *    (strings, raw strings, comments, multi-line declarations,
 *    companion-header semantics are covered via the fixtures' shapes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.hh"

namespace v3sim::simlint
{
namespace
{

std::string
fixture(const std::string &name)
{
    return std::string(SIMLINT_FIXTURE_DIR) + "/" + name;
}

/** (line, rule) pairs, sorted, for exact-match assertions. */
std::vector<std::pair<int, std::string>>
lineRules(const std::vector<Finding> &findings)
{
    std::vector<std::pair<int, std::string>> out;
    for (const Finding &f : findings)
        out.emplace_back(f.line, f.rule);
    std::sort(out.begin(), out.end());
    return out;
}

using LineRules = std::vector<std::pair<int, std::string>>;

TEST(SimlintFixtures, WallClock)
{
    const auto got = lineRules(lintFile(fixture("bad_wall_clock.cc")));
    const LineRules want = {{9, "wall-clock"},
                            {10, "wall-clock"},
                            {11, "wall-clock"},
                            {13, "wall-clock"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, RawRandom)
{
    const auto got = lineRules(lintFile(fixture("bad_raw_random.cc")));
    const LineRules want = {{9, "raw-random"},
                            {10, "raw-random"},
                            {11, "raw-random"},
                            {12, "raw-random"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, UnorderedIter)
{
    const auto got =
        lineRules(lintFile(fixture("bad_unordered_iter.cc")));
    const LineRules want = {{22, "unordered-iter"},
                            {24, "unordered-iter"},
                            {26, "unordered-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, PtrMapIter)
{
    const auto got =
        lineRules(lintFile(fixture("bad_ptr_map_iter.cc")));
    const LineRules want = {{18, "ptr-map-iter"},
                            {20, "ptr-map-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, MetricName)
{
    const auto got =
        lineRules(lintFile(fixture("bad_metric_name.cc")));
    const LineRules want = {{13, "metric-name"},
                            {14, "metric-name"},
                            {15, "metric-name"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, MetricHandle)
{
    const auto got =
        lineRules(lintFile(fixture("bad_metric_lookup.cc")));
    // Lines 22/23: single-line chains; line 24: a chain wrapped
    // across lines reports at the lookup call. The bare lookup
    // (26), handle registration (28) and the annotated line (31)
    // must not fire.
    const LineRules want = {{22, "metric-handle"},
                            {23, "metric-handle"},
                            {24, "metric-handle"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, ReasonlessAnnotationIsAFinding)
{
    const auto got =
        lineRules(lintFile(fixture("bad_annotation.cc")));
    // The malformed annotations are findings AND fail to suppress.
    const LineRules want = {{9, "annotation"},
                            {10, "unordered-iter"},
                            {12, "annotation"},
                            {13, "unordered-iter"}};
    EXPECT_EQ(got, want);
}

TEST(SimlintFixtures, JustifiedAnnotationsSuppress)
{
    EXPECT_TRUE(lintFile(fixture("allowed_unordered_iter.cc")).empty());
}

TEST(SimlintFixtures, CleanFileIsClean)
{
    EXPECT_TRUE(lintFile(fixture("clean.cc")).empty());
}

TEST(Simlint, MissingFileReportsIoFinding)
{
    const auto findings = lintFile(fixture("no_such_file.cc"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "io");
}

// --- Inline lexer/matcher behavior ----------------------------------

TEST(Simlint, StringsAndCommentsDoNotTrigger)
{
    const std::string src =
        "// system_clock in a comment\n"
        "/* rand() in a block comment */\n"
        "const char *a = \"time(nullptr) inside a string\";\n"
        "const char *b = R\"(std::mt19937 in a raw string)\";\n";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(Simlint, WallClockInCodeTriggers)
{
    const auto findings = lintSource(
        "x.cc", "auto t = std::chrono::system_clock::now();\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "wall-clock");
    EXPECT_EQ(findings[0].line, 1);
}

TEST(Simlint, SimRandomEngineFileIsExemptFromRawRandom)
{
    // sim/random.* implements the sanctioned engine and may name
    // engine types; the same text elsewhere is a finding.
    const std::string src = "using engine = std::mt19937_64;\n";
    EXPECT_TRUE(lintSource("src/sim/random.hh", src).empty());
    EXPECT_FALSE(lintSource("src/dsa/foo.hh", src).empty());
}

TEST(Simlint, MultiLineDeclarationIsTracked)
{
    const std::string src =
        "#include <unordered_map>\n"
        "std::unordered_map<int,\n"
        "                   int>\n"
        "    scattered;\n"
        "int f() { int n = 0; for (auto &[k, v] : scattered) n += v;"
        " return n; }\n";
    const auto findings = lintSource("x.cc", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-iter");
    EXPECT_EQ(findings[0].line, 5);
}

TEST(Simlint, MetricHandleSeesThroughArgumentParens)
{
    // Nested parens in the lookup argument must not derail the
    // chain matcher.
    const auto findings = lintSource(
        "x.cc",
        "void f(R &m) { m.counter(name(0, \"a.b\")).increment(); }\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "metric-handle");
}

TEST(Simlint, MetricHandleIgnoresHandleRecording)
{
    // Recording through an already-resolved handle is the sanctioned
    // idiom and carries no lookup call to flag.
    EXPECT_TRUE(
        lintSource("x.cc", "void f(H &ios) { ios.increment(); }\n")
            .empty());
}

TEST(Simlint, FormatFindingIsClickable)
{
    Finding f;
    f.file = "src/a.cc";
    f.line = 12;
    f.rule = "wall-clock";
    f.message = "m";
    EXPECT_EQ(formatFinding(f), "src/a.cc:12: [wall-clock] m");
}

TEST(Simlint, RepoSourcesAreCleanUnderTheirAnnotations)
{
    // Belt-and-braces alongside the simlint_repo ctest: the linter
    // run over its own implementation must be clean too.
    const auto findings = lintFile(fixture("../lint.cc"));
    for (const Finding &f : findings)
        ADD_FAILURE() << formatFinding(f);
}

} // namespace
} // namespace v3sim::simlint
