/**
 * @file
 * Unit tests for the LRU block cache: residency, eviction order,
 * pinning, and statistics.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "storage/block_cache.hh"

namespace v3sim::storage
{
namespace
{

CacheKey
key(uint64_t block)
{
    return CacheKey{0, block};
}

class LruCacheTest : public ::testing::Test
{
  protected:
    LruCacheTest() : cache_(mem_, 8192, 4) {}

    sim::MemorySpace mem_;
    LruCache cache_;
};

TEST_F(LruCacheTest, MissThenHit)
{
    EXPECT_FALSE(cache_.lookupAndPin(key(1)).has_value());
    EXPECT_EQ(cache_.misses(), 1u);
    auto frame = cache_.insertAndPin(key(1));
    ASSERT_TRUE(frame.has_value());
    cache_.unpin(key(1));
    auto again = cache_.lookupAndPin(key(1));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *frame);
    EXPECT_EQ(cache_.hits(), 1u);
    cache_.unpin(key(1));
}

TEST_F(LruCacheTest, FramesAreDistinctAndSized)
{
    auto a = cache_.insertAndPin(key(1));
    auto b = cache_.insertAndPin(key(2));
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(static_cast<uint64_t>(std::abs(
                  static_cast<int64_t>(*a) - static_cast<int64_t>(*b))) %
                  8192,
              0u);
    // Frames live inside the declared pool.
    EXPECT_GE(*a, cache_.frameBase());
    EXPECT_LT(*a, cache_.frameBase() + cache_.frameBytes());
}

TEST_F(LruCacheTest, EvictsLeastRecentlyUsed)
{
    for (uint64_t b = 0; b < 4; ++b) {
        cache_.insertAndPin(key(b));
        cache_.unpin(key(b));
    }
    // Touch 0 so 1 becomes LRU.
    cache_.lookupAndPin(key(0));
    cache_.unpin(key(0));
    cache_.insertAndPin(key(10));
    cache_.unpin(key(10));
    EXPECT_TRUE(cache_.contains(key(0)));
    EXPECT_FALSE(cache_.contains(key(1)));
    EXPECT_TRUE(cache_.contains(key(10)));
}

TEST_F(LruCacheTest, PinnedBlocksAreNotEvicted)
{
    for (uint64_t b = 0; b < 4; ++b)
        cache_.insertAndPin(key(b)); // all pinned
    // Eviction must skip pinned frames; with all pinned, insert fails.
    EXPECT_FALSE(cache_.insertAndPin(key(99)).has_value());
    cache_.unpin(key(2));
    auto frame = cache_.insertAndPin(key(99));
    ASSERT_TRUE(frame.has_value());
    EXPECT_FALSE(cache_.contains(key(2)));
    EXPECT_TRUE(cache_.contains(key(0)));
}

TEST_F(LruCacheTest, InsertExistingJustPins)
{
    auto a = cache_.insertAndPin(key(5));
    auto b = cache_.insertAndPin(key(5));
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(cache_.residentBlocks(), 1u);
    cache_.unpin(key(5));
    cache_.unpin(key(5));
}

TEST_F(LruCacheTest, InvalidateRespectsPins)
{
    cache_.insertAndPin(key(7));
    cache_.invalidate(key(7)); // pinned: no-op
    EXPECT_TRUE(cache_.contains(key(7)));
    cache_.unpin(key(7));
    cache_.invalidate(key(7));
    EXPECT_FALSE(cache_.contains(key(7)));
}

TEST_F(LruCacheTest, HitRatioMath)
{
    cache_.lookupAndPin(key(1)); // miss
    cache_.insertAndPin(key(1));
    cache_.unpin(key(1));
    cache_.unpin(key(1));
    cache_.lookupAndPin(key(1)); // hit
    cache_.unpin(key(1));
    cache_.lookupAndPin(key(2)); // miss
    EXPECT_NEAR(cache_.hitRatio(), 1.0 / 3.0, 1e-9);
    cache_.resetStats();
    EXPECT_EQ(cache_.hits() + cache_.misses(), 0u);
}

TEST_F(LruCacheTest, DifferentVolumesDistinct)
{
    cache_.insertAndPin(CacheKey{1, 42});
    cache_.unpin(CacheKey{1, 42});
    EXPECT_FALSE(cache_.contains(CacheKey{2, 42}));
    EXPECT_TRUE(cache_.contains(CacheKey{1, 42}));
}

} // namespace
} // namespace v3sim::storage
