/**
 * @file
 * Unit tests for the network fabric: latency, serialization,
 * ordering, drop filter, and statistics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hh"
#include "sim/simulation.hh"

namespace v3sim::net
{
namespace
{

using sim::Tick;
using sim::usecs;

struct TestMsg
{
    int value;
};

class FabricTest : public ::testing::Test
{
  protected:
    sim::Simulation sim_;
};

TEST_F(FabricTest, DeliversWithPropagationAndSerialization)
{
    FabricConfig config;
    config.bandwidth_bps = 100e6; // 100 bytes / us
    config.propagation = usecs(2);
    Fabric fabric(sim_.queue(), config);

    Tick delivered_at = -1;
    const PortId a = fabric.attach([](Packet) {}, "a");
    const PortId b = fabric.attach(
        [&](Packet) { delivered_at = sim_.now(); }, "b");

    Packet packet;
    packet.src = a;
    packet.dst = b;
    packet.wire_bytes = 1000; // 10 us serialization
    fabric.send(std::move(packet));
    sim_.run();
    EXPECT_EQ(delivered_at, usecs(12));
}

TEST_F(FabricTest, PayloadArrivesIntact)
{
    Fabric fabric(sim_.queue());
    int got = 0;
    const PortId a = fabric.attach([](Packet) {});
    const PortId b = fabric.attach([&](Packet p) {
        got = std::static_pointer_cast<TestMsg>(p.payload)->value;
    });

    Packet packet;
    packet.src = a;
    packet.dst = b;
    packet.wire_bytes = 64;
    packet.payload = std::make_shared<TestMsg>(TestMsg{99});
    fabric.send(std::move(packet));
    sim_.run();
    EXPECT_EQ(got, 99);
}

TEST_F(FabricTest, PerSourceFifoOrdering)
{
    Fabric fabric(sim_.queue());
    std::vector<int> order;
    const PortId a = fabric.attach([](Packet) {});
    const PortId b = fabric.attach([&](Packet p) {
        order.push_back(
            std::static_pointer_cast<TestMsg>(p.payload)->value);
    });
    for (int i = 0; i < 5; ++i) {
        Packet packet;
        packet.src = a;
        packet.dst = b;
        packet.wire_bytes = 5000;
        packet.payload = std::make_shared<TestMsg>(TestMsg{i});
        fabric.send(std::move(packet));
    }
    sim_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(FabricTest, TransmitSerializationQueues)
{
    FabricConfig config;
    config.bandwidth_bps = 100e6;
    config.propagation = 0;
    Fabric fabric(sim_.queue(), config);
    std::vector<Tick> arrivals;
    const PortId a = fabric.attach([](Packet) {});
    const PortId b = fabric.attach(
        [&](Packet) { arrivals.push_back(sim_.now()); });
    for (int i = 0; i < 3; ++i) {
        Packet packet;
        packet.src = a;
        packet.dst = b;
        packet.wire_bytes = 1000; // 10 us each
        fabric.send(std::move(packet));
    }
    sim_.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], usecs(10));
    EXPECT_EQ(arrivals[1], usecs(20));
    EXPECT_EQ(arrivals[2], usecs(30));
}

TEST_F(FabricTest, OnWireFiresAtSerializationEnd)
{
    FabricConfig config;
    config.bandwidth_bps = 100e6;
    config.propagation = usecs(5);
    Fabric fabric(sim_.queue(), config);
    const PortId a = fabric.attach([](Packet) {});
    const PortId b = fabric.attach([](Packet) {});
    Tick wired_at = -1;
    Packet packet;
    packet.src = a;
    packet.dst = b;
    packet.wire_bytes = 1000;
    fabric.send(std::move(packet), [&] { wired_at = sim_.now(); });
    sim_.run();
    EXPECT_EQ(wired_at, usecs(10)); // excludes propagation
}

TEST_F(FabricTest, DropFilterDiscardsButCountsWire)
{
    Fabric fabric(sim_.queue());
    int delivered = 0;
    const PortId a = fabric.attach([](Packet) {});
    const PortId b = fabric.attach([&](Packet) { ++delivered; });
    fabric.setDropFilter(
        [&](const Packet &p) { return p.dst == b; });

    bool on_wire_fired = false;
    Packet packet;
    packet.src = a;
    packet.dst = b;
    packet.wire_bytes = 64;
    fabric.send(std::move(packet), [&] { on_wire_fired = true; });
    sim_.run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(fabric.packetsDropped(), 1u);
    EXPECT_TRUE(on_wire_fired); // sender cannot tell
}

TEST_F(FabricTest, InvalidPortDrops)
{
    Fabric fabric(sim_.queue());
    const PortId a = fabric.attach([](Packet) {});
    Packet packet;
    packet.src = a;
    packet.dst = 42; // never attached
    packet.wire_bytes = 64;
    fabric.send(std::move(packet));
    sim_.run();
    EXPECT_EQ(fabric.packetsDropped(), 1u);
}

TEST_F(FabricTest, StatisticsAccumulate)
{
    Fabric fabric(sim_.queue());
    const PortId a = fabric.attach([](Packet) {}, "client");
    const PortId b = fabric.attach([](Packet) {}, "server");
    for (int i = 0; i < 4; ++i) {
        Packet packet;
        packet.src = a;
        packet.dst = b;
        packet.wire_bytes = 256;
        fabric.send(std::move(packet));
    }
    sim_.run();
    EXPECT_EQ(fabric.bytesSent(a), 1024u);
    EXPECT_EQ(fabric.packetsDelivered(b), 4u);
    EXPECT_EQ(fabric.portName(a), "client");
    EXPECT_GT(fabric.txUtilization(a), 0.0);
}

} // namespace
} // namespace v3sim::net
