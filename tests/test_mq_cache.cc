/**
 * @file
 * Unit tests for the Multi-Queue cache: frequency promotion, ghost
 * memory, lifetime demotion, and the headline property from the MQ
 * paper — beating LRU on second-level (frequency-skewed, recency-
 * weak) access patterns.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "sim/random.hh"
#include "storage/mq_cache.hh"

namespace v3sim::storage
{
namespace
{

CacheKey
key(uint64_t block)
{
    return CacheKey{0, block};
}

/** Touch helper: lookup, insert on miss, unpin. Returns hit. */
bool
touch(BlockCache &cache, uint64_t block)
{
    if (cache.lookupAndPin(key(block))) {
        cache.unpin(key(block));
        return true;
    }
    cache.insertAndPin(key(block));
    cache.unpin(key(block));
    return false;
}

TEST(MqCache, BasicResidency)
{
    sim::MemorySpace mem;
    MqCache cache(mem, 8192, 8);
    EXPECT_FALSE(touch(cache, 1));
    EXPECT_TRUE(touch(cache, 1));
    EXPECT_EQ(cache.residentBlocks(), 1u);
}

TEST(MqCache, PinnedNeverEvicted)
{
    sim::MemorySpace mem;
    MqCache cache(mem, 8192, 2);
    cache.insertAndPin(key(1));
    cache.insertAndPin(key(2));
    EXPECT_FALSE(cache.insertAndPin(key(3)).has_value());
    cache.unpin(key(1));
    EXPECT_TRUE(cache.insertAndPin(key(3)).has_value());
    EXPECT_FALSE(cache.contains(key(1)));
    EXPECT_TRUE(cache.contains(key(2)));
}

TEST(MqCache, FrequentBlocksSurviveScan)
{
    // A hot set accessed repeatedly, then a one-shot scan larger
    // than the cache: MQ must keep (most of) the hot set because it
    // lives in higher-frequency queues; the scan churns only Q0.
    sim::MemorySpace mem;
    MqCache cache(mem, 8192, 16);

    for (int round = 0; round < 8; ++round) {
        for (uint64_t b = 0; b < 8; ++b)
            touch(cache, b);
    }
    for (uint64_t b = 100; b < 140; ++b)
        touch(cache, b); // the scan

    int hot_survivors = 0;
    for (uint64_t b = 0; b < 8; ++b)
        hot_survivors += cache.contains(key(b));
    EXPECT_GE(hot_survivors, 6);
}

TEST(MqCache, GhostRemembersEvictedFrequency)
{
    sim::MemorySpace mem;
    MqConfig config;
    config.ghost_ratio = 16.0;
    // Short lifetime so the idle hot block demotes and can be
    // evicted by the scan (queues protect it otherwise).
    config.life_time = 6;
    MqCache cache(mem, 8192, 4, config);

    // Make block 1 frequent, then evict it with a long scan during
    // which it sits idle and demotes queue by queue.
    for (int i = 0; i < 16; ++i)
        touch(cache, 1);
    for (uint64_t b = 50; b < 110; ++b)
        touch(cache, b);
    ASSERT_FALSE(cache.contains(key(1)));
    EXPECT_GT(cache.ghostSize(), 0u);

    // On return, block 1 resumes high standing (ghost hit): it is
    // re-inserted into a high queue, so a short burst of fresh
    // traffic evicts the scan blocks, not block 1.
    touch(cache, 1);
    for (uint64_t b = 200; b < 206; ++b)
        touch(cache, b);
    EXPECT_TRUE(cache.contains(key(1)));
}

TEST(MqCache, BeatsLruOnSecondLevelPattern)
{
    // Second-level pattern per the MQ paper: a first-level cache
    // absorbs recency, so the server cache sees accesses whose value
    // signal is *frequency*. Model: 20% hot blocks get 80% of
    // accesses, but interleaved with a long uniform tail that would
    // flush an LRU.
    constexpr uint64_t kCapacity = 64;
    constexpr uint64_t kUniverse = 1024;
    sim::Rng rng(2024);

    sim::MemorySpace mem_lru, mem_mq;
    LruCache lru(mem_lru, 8192, kCapacity);
    MqCache mq(mem_mq, 8192, kCapacity);

    for (int i = 0; i < 60000; ++i) {
        uint64_t block;
        if (rng.bernoulli(0.5)) {
            block = rng.uniformInt(0, kCapacity - 1); // hot set
        } else {
            block = kCapacity + rng.uniformInt(0, kUniverse); // tail
        }
        touch(lru, block);
        touch(mq, block);
    }
    EXPECT_GT(mq.hitRatio(), lru.hitRatio());
}

TEST(MqCache, LifetimeDemotionAllowsEviction)
{
    // With a short lifetime, a once-hot block that goes idle demotes
    // down the queues and becomes evictable by fresh traffic.
    sim::MemorySpace mem;
    MqConfig config;
    config.life_time = 8;
    MqCache cache(mem, 8192, 4, config);

    for (int i = 0; i < 32; ++i)
        touch(cache, 1); // very hot
    // Now a long stretch of other traffic with block 1 idle.
    for (uint64_t b = 10; b < 60; ++b)
        touch(cache, b);
    EXPECT_FALSE(cache.contains(key(1)));
}

TEST(MqCache, StatsAccumulate)
{
    sim::MemorySpace mem;
    MqCache cache(mem, 8192, 4);
    touch(cache, 1);
    touch(cache, 1);
    touch(cache, 2);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
}

} // namespace
} // namespace v3sim::storage
