/**
 * @file
 * Unit tests for ServerPool queueing and Semaphore fairness.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"

namespace v3sim::sim
{
namespace
{

TEST(ServerPool, SingleServerSerializesJobs)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 1);
    std::vector<Tick> done_at;
    for (int i = 0; i < 3; ++i)
        pool.submit(usecs(10), [&] { done_at.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done_at.size(), 3u);
    EXPECT_EQ(done_at[0], usecs(10));
    EXPECT_EQ(done_at[1], usecs(20));
    EXPECT_EQ(done_at[2], usecs(30));
}

TEST(ServerPool, MultiServerRunsInParallel)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 2);
    std::vector<Tick> done_at;
    for (int i = 0; i < 4; ++i)
        pool.submit(usecs(10), [&] { done_at.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done_at.size(), 4u);
    EXPECT_EQ(done_at[0], usecs(10));
    EXPECT_EQ(done_at[1], usecs(10));
    EXPECT_EQ(done_at[2], usecs(20));
    EXPECT_EQ(done_at[3], usecs(20));
}

TEST(ServerPool, AwaitableUse)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 1);
    Tick finished = -1;
    spawn([](Simulation &s, ServerPool &p, Tick &out) -> Task<> {
        co_await p.use(usecs(25));
        out = s.now();
    }(sim, pool, finished));
    sim.run();
    EXPECT_EQ(finished, usecs(25));
}

TEST(ServerPool, WaitStatsMeasureQueueing)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 1);
    pool.submit(usecs(10), [] {});
    pool.submit(usecs(10), [] {});
    pool.submit(usecs(10), [] {});
    sim.run();
    // Waits: 0, 10us, 20us -> mean 10us.
    EXPECT_EQ(pool.waitStats().count(), 3u);
    EXPECT_DOUBLE_EQ(pool.waitStats().mean(),
                     static_cast<double>(usecs(10)));
    EXPECT_EQ(pool.completedCount(), 3u);
}

TEST(ServerPool, UtilizationReflectsBusyFraction)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 2);
    pool.submit(usecs(10), [] {});
    sim.run();
    sim.runUntil(usecs(20));
    // One of two servers busy for 10us of a 20us window.
    EXPECT_NEAR(pool.utilization(), 0.25, 1e-9);
}

TEST(ServerPool, ZeroServiceJobsCompleteSameTick)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 1);
    bool done = false;
    pool.submit(0, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 0);
}

TEST(ServerPool, ResetStatsClearsWindow)
{
    Simulation sim;
    ServerPool pool(sim.queue(), 1);
    pool.submit(usecs(10), [] {});
    sim.run();
    pool.resetStats();
    sim.runUntil(usecs(30));
    EXPECT_NEAR(pool.utilization(), 0.0, 1e-9);
    EXPECT_EQ(pool.completedCount(), 0u);
}

TEST(Semaphore, AcquireBlocksUntilRelease)
{
    Simulation sim;
    Semaphore sem(sim.queue(), 1);
    std::vector<int> order;
    auto worker = [](Simulation &s, Semaphore &sm,
                     std::vector<int> &out, int id) -> Task<> {
        co_await sm.acquire();
        out.push_back(id);
        co_await s.sleep(usecs(10));
        sm.release();
    };
    spawn(worker(sim, sem, order, 1));
    spawn(worker(sim, sem, order, 2));
    spawn(worker(sim, sem, order, 3));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sem.available(), 1);
}

TEST(Semaphore, ReleaseManyWakesFifo)
{
    Simulation sim;
    Semaphore sem(sim.queue(), 0);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        spawn([](Semaphore &sm, std::vector<int> &out, int id) -> Task<> {
            co_await sm.acquire();
            out.push_back(id);
        }(sem, order, i));
    }
    sim.run();
    EXPECT_EQ(sem.waiterCount(), 4u);
    sem.release(2);
    sim.run(); // grants land in the final band
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    sem.release(10);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(sem.available(), 8);
}

// DESIGN.md §8.3: same-tick acquirers are granted in order_key
// order, not park (arrival) order — the tie-shuffle may permute
// arrival, so content keys must decide who gets a scarce count.
TEST(Semaphore, SameTickGrantsFollowOrderKey)
{
    Simulation sim;
    Semaphore sem(sim.queue(), 2);
    std::vector<int> order;
    // Park in descending-key order; grants must ascend by key.
    for (int i = 3; i >= 0; --i) {
        spawn([](Semaphore &sm, std::vector<int> &out, int id) -> Task<> {
            co_await sm.acquire(static_cast<uint64_t>(id));
            out.push_back(id);
        }(sem, order, i));
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(sem.waiterCount(), 2u);
    sem.release(2);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace v3sim::sim
