/**
 * @file
 * Unit tests for the OLTP engine over an in-memory fake device:
 * worker lifecycle, counters, CPU accounting, and the blocking vs
 * polling completion-overhead distinction.
 */

#include <gtest/gtest.h>

#include "db/oltp_engine.hh"
#include "sim/simulation.hh"

namespace v3sim::db
{
namespace
{

/** Fixed-latency device: no CPU cost, pure delay. */
class FakeDevice : public dsa::BlockDevice
{
  public:
    FakeDevice(sim::Simulation &sim, sim::Tick latency)
        : sim_(sim), latency_(latency)
    {}

    sim::Task<bool>
    read(uint64_t, uint64_t, sim::Addr) override
    {
        ++ios;
        co_await sim_.sleep(latency_);
        co_return true;
    }

    sim::Task<bool>
    write(uint64_t, uint64_t, sim::Addr) override
    {
        ++ios;
        co_await sim_.sleep(latency_);
        co_return true;
    }

    uint64_t capacity() const override { return 1ull << 40; }

    uint64_t ios = 0;

  private:
    sim::Simulation &sim_;
    sim::Tick latency_;
};

class OltpEngineTest : public ::testing::Test
{
  protected:
    OltpEngineTest()
        : node_(sim_, osmodel::NodeConfig{.name = "db", .cpus = 4}),
          device_(sim_, sim::usecs(200))
    {
        tpcc::TpccConfig workload_config;
        workload_config.warehouses = 4;
        workload_config.bytes_per_warehouse = 8 * util::kMiB;
        workload_config.ios_per_txn = 4;
        workload_config.cpu_per_txn = sim::usecs(100);
        workload_ = std::make_unique<tpcc::Workload>(
            workload_config, device_.capacity(), sim_.forkRng());
    }

    sim::Simulation sim_;
    osmodel::Node node_;
    FakeDevice device_;
    std::unique_ptr<tpcc::Workload> workload_;
};

TEST_F(OltpEngineTest, RunsAndCounts)
{
    OltpConfig config;
    config.workers = 8;
    OltpEngine engine(node_, device_, *workload_, config);
    const OltpResult result =
        engine.run(sim::msecs(10), sim::msecs(100));
    EXPECT_GT(result.total_tpm, 0);
    EXPECT_GT(result.tpmc, 0);
    EXPECT_LT(result.tpmc, result.total_tpm);
    // tpmC is the New-Order share, ~45% of all transactions.
    EXPECT_NEAR(result.tpmc / result.total_tpm, 0.45, 0.08);
    EXPECT_GT(result.io_per_second, 0);
    EXPECT_GT(engine.committedCount(), 0u);
    EXPECT_GT(device_.ios, 0u);
}

TEST_F(OltpEngineTest, CpuBreakdownTilesUtilization)
{
    OltpConfig config;
    config.workers = 16;
    OltpEngine engine(node_, device_, *workload_, config);
    const OltpResult result =
        engine.run(sim::msecs(10), sim::msecs(100));
    double sum = 0;
    for (const double share : result.cpu_breakdown)
        sum += share;
    EXPECT_NEAR(sum, result.cpu_utilization, 1e-6);
    // SQL work and induced overheads both show up.
    EXPECT_GT(result.cpu_breakdown[static_cast<size_t>(
                  osmodel::CpuCat::Sql)],
              0.0);
    EXPECT_GT(result.cpu_breakdown[static_cast<size_t>(
                  osmodel::CpuCat::Kernel)],
              0.0);
    EXPECT_GT(result.cpu_breakdown[static_cast<size_t>(
                  osmodel::CpuCat::Lock)],
              0.0);
}

TEST_F(OltpEngineTest, PollingCompletionShiftsKernelToOther)
{
    OltpConfig blocking;
    blocking.workers = 8;
    blocking.polling_completion = false;

    OltpConfig polling = blocking;
    polling.polling_completion = true;

    OltpEngine engine_blocking(node_, device_, *workload_, blocking);
    const OltpResult rb =
        engine_blocking.run(sim::msecs(10), sim::msecs(80));
    const double kernel_blocking =
        rb.cpu_breakdown[static_cast<size_t>(
            osmodel::CpuCat::Kernel)] /
        rb.cpu_utilization;

    sim::Simulation sim2;
    osmodel::Node node2(sim2, osmodel::NodeConfig{.name = "db2",
                                                  .cpus = 4});
    FakeDevice device2(sim2, sim::usecs(200));
    tpcc::TpccConfig wc;
    wc.warehouses = 4;
    wc.bytes_per_warehouse = 8 * util::kMiB;
    tpcc::Workload workload2(wc, device2.capacity(), sim2.forkRng());
    OltpEngine engine_polling(node2, device2, workload2, polling);
    const OltpResult rp =
        engine_polling.run(sim::msecs(10), sim::msecs(80));
    const double kernel_polling =
        rp.cpu_breakdown[static_cast<size_t>(
            osmodel::CpuCat::Kernel)] /
        rp.cpu_utilization;

    EXPECT_LT(kernel_polling, kernel_blocking);
}

TEST_F(OltpEngineTest, MoreWorkersMoreThroughputUntilSaturation)
{
    auto run_with = [&](int workers) {
        sim::Simulation s;
        osmodel::Node n(s, osmodel::NodeConfig{.name = "db",
                                               .cpus = 4});
        FakeDevice d(s, sim::usecs(200));
        tpcc::TpccConfig wc;
        wc.warehouses = 4;
        wc.bytes_per_warehouse = 8 * util::kMiB;
        tpcc::Workload w(wc, d.capacity(), s.forkRng());
        OltpConfig config;
        config.workers = workers;
        OltpEngine engine(n, d, w, config);
        return engine.run(sim::msecs(10), sim::msecs(80)).total_tpm;
    };
    const double one = run_with(1);
    const double eight = run_with(8);
    EXPECT_GT(eight, 3 * one);
}

TEST_F(OltpEngineTest, StopHaltsWorkers)
{
    OltpConfig config;
    config.workers = 4;
    OltpEngine engine(node_, device_, *workload_, config);
    engine.start();
    sim_.runUntil(sim::msecs(20));
    engine.stop();
    sim_.run(); // workers drain at their txn boundary
    const uint64_t committed = engine.committedCount();
    sim_.runUntil(sim_.now() + sim::msecs(20));
    EXPECT_EQ(engine.committedCount(), committed);
}

TEST_F(OltpEngineTest, LogWriterStreamsSequentially)
{
    sim::Simulation s;
    osmodel::Node n(s, osmodel::NodeConfig{.name = "db", .cpus = 4});
    FakeDevice data(s, sim::usecs(100));
    FakeDevice log(s, sim::usecs(50));
    tpcc::TpccConfig wc;
    wc.warehouses = 4;
    wc.bytes_per_warehouse = 8 * util::kMiB;
    tpcc::Workload w(wc, data.capacity(), s.forkRng());
    OltpConfig config;
    config.workers = 8;
    config.enable_log = true;
    OltpEngine engine(n, data, w, config);
    engine.setLogDevice(&log);
    engine.run(sim::msecs(10), sim::msecs(100));
    EXPECT_GT(log.ios, 0u);
}

} // namespace
} // namespace v3sim::db
