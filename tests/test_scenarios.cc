/**
 * @file
 * Integration tests for the scenarios layer: testbed assembly, the
 * micro-benchmark rig, the raw-VI reference, and paper-shape
 * assertions that guard the figure benches.
 */

#include <gtest/gtest.h>

#include "scenarios/microbench.hh"
#include "scenarios/tpcc_run.hh"

namespace v3sim::scenarios
{
namespace
{

TEST(Testbed, AssemblesV3Platform)
{
    Testbed testbed(Backend::Cdsa, HostParams::midSize(),
                    StorageParams::midSize());
    EXPECT_TRUE(testbed.connectAll());
    EXPECT_EQ(testbed.servers().size(), 4u);
    EXPECT_EQ(testbed.clients().size(), 4u);
    EXPECT_GT(testbed.device().capacity(), 0u);
    // 4 nodes x 15 disks.
    size_t disks = 0;
    for (auto &server : testbed.servers())
        disks += server->diskManager().diskCount();
    EXPECT_EQ(disks, 60u);
}

TEST(Testbed, AssemblesLocalPlatform)
{
    StorageParams storage = StorageParams::midSize();
    storage.local_disks = 32;
    Testbed testbed(Backend::Local, HostParams::midSize(), storage);
    EXPECT_TRUE(testbed.connectAll());
    EXPECT_NE(testbed.local(), nullptr);
    EXPECT_TRUE(testbed.servers().empty());
}

TEST(RawVi, SmallMessageNearSevenMicroseconds)
{
    const double one_way_us = rawViLatencyUs(64, 40) / 2.0;
    // Round trip includes client-side reg/dereg + interrupt; the
    // paper's 7 us is the bare one-way. Accept the band.
    EXPECT_GT(one_way_us, 4.0);
    EXPECT_LT(one_way_us, 18.0);
}

TEST(RawVi, LatencyGrowsWithSize)
{
    const double at_512 = rawViLatencyUs(512, 30);
    const double at_8k = rawViLatencyUs(8192, 30);
    const double at_16k = rawViLatencyUs(16384, 30);
    EXPECT_LT(at_512, at_8k);
    EXPECT_LT(at_8k, at_16k);
    // 8K adds ~70us of serialization at 110 MB/s.
    EXPECT_NEAR(at_8k - at_512, 70.0, 25.0);
}

TEST(MicroRig, CachedReadsFasterThanUncached)
{
    MicroRig::Config cached_config;
    cached_config.backend = Backend::Kdsa;
    MicroRig cached(cached_config);
    const auto hit = cached.measureLatency(8192, true, 40, true);

    MicroRig::Config uncached_config;
    uncached_config.backend = Backend::Kdsa;
    uncached_config.cache_bytes = 0;
    MicroRig uncached(uncached_config);
    const auto miss = uncached.measureLatency(8192, true, 40, false);

    // Cache hits are ~0.1-0.2 ms; disk misses are milliseconds.
    EXPECT_LT(hit.mean_us, 400.0);
    EXPECT_GT(miss.mean_us, 2000.0);
}

TEST(MicroRig, ThroughputSaturatesWithOutstanding)
{
    MicroRig::Config config;
    config.backend = Backend::Kdsa;
    MicroRig rig(config);
    const auto one =
        rig.measureThroughput(8192, true, 1, sim::msecs(100), true);
    const auto four =
        rig.measureThroughput(8192, true, 4, sim::msecs(100), true);
    const auto eight =
        rig.measureThroughput(8192, true, 8, sim::msecs(100), true);
    EXPECT_GT(four.mbps, one.mbps * 1.3);
    // Figure 6: 4 outstanding saturate the ~110 MB/s link at 8K.
    EXPECT_NEAR(four.mbps, 108.0, 10.0);
    EXPECT_NEAR(eight.mbps, four.mbps, 8.0);
}

TEST(MicroRig, UncachedVsLocalWithinBand)
{
    MicroRig::Config v3_config;
    v3_config.backend = Backend::Kdsa;
    v3_config.cache_bytes = 0;
    MicroRig v3(v3_config);
    const auto rv = v3.measureLatency(8192, true, 80, false);

    MicroRig::Config local_config;
    local_config.backend = Backend::Local;
    MicroRig local(local_config);
    const auto rl = local.measureLatency(8192, true, 80, false);

    // Figure 7: V3 within ~3% of local below 64K.
    EXPECT_LT(rv.mean_us / rl.mean_us, 1.06);
    EXPECT_GT(rv.mean_us / rl.mean_us, 0.97);
}

TEST(TpccRun, SmokeRunProducesSaneNumbers)
{
    TpccRunConfig config;
    config.platform = Platform::MidSize;
    config.backend = Backend::Cdsa;
    config.warmup = sim::msecs(100);
    config.window = sim::msecs(300);
    const TpccRunResult result = runTpcc(config);
    EXPECT_GT(result.oltp.tpmc, 0);
    EXPECT_GT(result.oltp.total_tpm, result.oltp.tpmc);
    EXPECT_GT(result.oltp.cpu_utilization, 0.3);
    EXPECT_LE(result.oltp.cpu_utilization, 1.0 + 1e-9);
    // Section 6.2's headline: the V3 cache absorbs a substantial
    // fraction of reads.
    EXPECT_GT(result.server_cache_hit, 0.25);
    EXPECT_LT(result.server_cache_hit, 0.60);
    EXPECT_EQ(result.retransmits, 0u);
}

TEST(TpccRun, WorkloadConfigsMatchPaperScale)
{
    const tpcc::TpccConfig mid = platformWorkload(Platform::MidSize);
    const tpcc::TpccConfig large = platformWorkload(Platform::Large);
    EXPECT_EQ(mid.warehouses, 1625u);
    EXPECT_EQ(large.warehouses, 10000u);
    // Scaled working sets keep the paper's ~1:10 ratio.
    const double ratio =
        static_cast<double>(large.workingSetBytes()) /
        static_cast<double>(mid.workingSetBytes());
    EXPECT_NEAR(ratio, 9.6, 1.0);
    EXPECT_DOUBLE_EQ(mid.read_fraction, 0.70);
}

TEST(TpccRun, BackendNamesRoundTrip)
{
    EXPECT_STREQ(backendName(Backend::Local), "Local");
    EXPECT_STREQ(backendName(Backend::Kdsa), "kDSA");
    EXPECT_STREQ(backendName(Backend::Wdsa), "wDSA");
    EXPECT_STREQ(backendName(Backend::Cdsa), "cDSA");
    EXPECT_EQ(backendImpl(Backend::Cdsa), dsa::DsaImpl::Cdsa);
}

} // namespace
} // namespace v3sim::scenarios
