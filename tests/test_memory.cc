/**
 * @file
 * Unit tests for MemorySpace: allocation, bounds, data integrity,
 * phantom mode, and cross-space copies.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/memory.hh"

namespace v3sim::sim
{
namespace
{

TEST(MemorySpace, AllocateReturnsDistinctAddresses)
{
    MemorySpace mem;
    const Addr a = mem.allocate(100);
    const Addr b = mem.allocate(100);
    EXPECT_NE(a, kNullAddr);
    EXPECT_NE(b, kNullAddr);
    EXPECT_NE(a, b);
    EXPECT_EQ(mem.allocationCount(), 2u);
    EXPECT_EQ(mem.allocatedBytes(), 200u);
}

TEST(MemorySpace, ZeroLengthAllocationRejected)
{
    MemorySpace mem;
    EXPECT_EQ(mem.allocate(0), kNullAddr);
}

TEST(MemorySpace, WriteReadRoundTrip)
{
    MemorySpace mem;
    const Addr a = mem.allocate(64);
    const char src[] = "hello, storage world";
    ASSERT_TRUE(mem.write(a + 8, src, sizeof(src)));
    char dst[sizeof(src)] = {};
    ASSERT_TRUE(mem.read(a + 8, dst, sizeof(src)));
    EXPECT_STREQ(dst, src);
}

TEST(MemorySpace, OutOfBoundsRejected)
{
    MemorySpace mem;
    const Addr a = mem.allocate(64);
    char buf[8] = {};
    EXPECT_FALSE(mem.write(a + 60, buf, 8));   // crosses the end
    EXPECT_FALSE(mem.read(a + 64, buf, 1));    // starts past the end
    EXPECT_FALSE(mem.read(kNullAddr, buf, 1)); // null
    EXPECT_TRUE(mem.write(a + 56, buf, 8));    // exactly at the end
}

TEST(MemorySpace, ContainsChecksLiveAllocations)
{
    MemorySpace mem;
    const Addr a = mem.allocate(4096);
    EXPECT_TRUE(mem.contains(a, 4096));
    EXPECT_TRUE(mem.contains(a + 100, 100));
    EXPECT_FALSE(mem.contains(a, 4097));
    mem.free(a);
    EXPECT_FALSE(mem.contains(a, 1));
}

TEST(MemorySpace, FreeIsIdempotent)
{
    MemorySpace mem;
    const Addr a = mem.allocate(16);
    mem.free(a);
    mem.free(a);
    EXPECT_EQ(mem.allocatedBytes(), 0u);
}

TEST(MemorySpace, AddressesNeverReused)
{
    MemorySpace mem;
    const Addr a = mem.allocate(kPageSize);
    mem.free(a);
    const Addr b = mem.allocate(kPageSize);
    EXPECT_NE(a, b);
}

TEST(MemorySpace, FillWritesPattern)
{
    MemorySpace mem;
    const Addr a = mem.allocate(32);
    ASSERT_TRUE(mem.fill(a, 0xAB, 32));
    uint8_t buf[32];
    ASSERT_TRUE(mem.read(a, buf, 32));
    for (const uint8_t v : buf)
        EXPECT_EQ(v, 0xAB);
}

TEST(MemorySpace, CopyBetweenSpaces)
{
    MemorySpace src, dst;
    const Addr a = src.allocate(10000);
    const Addr b = dst.allocate(10000);
    std::vector<uint8_t> pattern(10000);
    for (size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<uint8_t>(i * 31);
    ASSERT_TRUE(src.write(a, pattern.data(), pattern.size()));
    ASSERT_TRUE(MemorySpace::copy(src, a, dst, b, pattern.size()));
    std::vector<uint8_t> out(10000);
    ASSERT_TRUE(dst.read(b, out.data(), out.size()));
    EXPECT_EQ(out, pattern);
}

TEST(MemorySpace, CopyRejectsBadRanges)
{
    MemorySpace src, dst;
    const Addr a = src.allocate(100);
    const Addr b = dst.allocate(50);
    EXPECT_FALSE(MemorySpace::copy(src, a, dst, b, 100));
}

TEST(MemorySpace, PhantomDiscardsWritesReadsZero)
{
    MemorySpace mem(/*phantom=*/true);
    const Addr a = mem.allocate(64);
    const char src[] = "data";
    EXPECT_TRUE(mem.write(a, src, sizeof(src)));
    char dst[4] = {1, 2, 3, 4};
    EXPECT_TRUE(mem.read(a, dst, 4));
    for (const char c : dst)
        EXPECT_EQ(c, 0);
    // Bounds still enforced.
    EXPECT_FALSE(mem.write(a + 60, src, sizeof(src)));
}

TEST(MemorySpace, PhantomToRealCopyZeroFills)
{
    MemorySpace src(/*phantom=*/true), dst;
    const Addr a = src.allocate(16);
    const Addr b = dst.allocate(16);
    ASSERT_TRUE(dst.fill(b, 0xFF, 16));
    ASSERT_TRUE(MemorySpace::copy(src, a, dst, b, 16));
    uint8_t out[16];
    ASSERT_TRUE(dst.read(b, out, 16));
    for (const uint8_t v : out)
        EXPECT_EQ(v, 0);
}

TEST(MemorySpace, U64FlagHelpers)
{
    MemorySpace mem;
    const Addr a = mem.allocate(8);
    EXPECT_EQ(mem.readU64(a), 0u);
    EXPECT_TRUE(mem.writeU64(a, 0xDEADBEEFCAFEF00Dull));
    EXPECT_EQ(mem.readU64(a), 0xDEADBEEFCAFEF00Dull);
}

TEST(MemorySpace, PageSpanComputation)
{
    EXPECT_EQ(pageSpan(0, 0), 0u);
    EXPECT_EQ(pageSpan(0, 1), 1u);
    EXPECT_EQ(pageSpan(0, kPageSize), 1u);
    EXPECT_EQ(pageSpan(0, kPageSize + 1), 2u);
    EXPECT_EQ(pageSpan(kPageSize - 1, 2), 2u); // straddles a boundary
    EXPECT_EQ(pageSpan(0, 8192), 2u);          // the paper's 8K buffer
}

} // namespace
} // namespace v3sim::sim
