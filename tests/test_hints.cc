/**
 * @file
 * Tests for the cDSA caching/prefetch hints (the section 2.2
 * "advanced features"): WillNeed prefetching, DontNeed eviction,
 * Sequential acknowledgement, and flow-control accounting.
 */

#include <gtest/gtest.h>

#include "dsa/dsa_client.hh"
#include "net/fabric.hh"
#include "osmodel/node.hh"
#include "sim/simulation.hh"
#include "storage/v3_server.hh"

namespace v3sim::dsa
{
namespace
{

using sim::Addr;
using sim::Task;

class HintTest : public ::testing::Test
{
  protected:
    HintTest()
        : sim_(31),
          fabric_(sim_.queue()),
          host_(sim_, osmodel::NodeConfig{.name = "db", .cpus = 4})
    {
        storage::V3ServerConfig config;
        config.cache_bytes = 2ull * 1024 * 1024;
        server_ = std::make_unique<storage::V3Server>(sim_, fabric_,
                                                      config);
        auto disks = server_->diskManager().addDisks(
            disk::DiskSpec::scsi10k(), "d", 2);
        volume_ = server_->volumeManager().addStripedVolume(
            disks, 64 * 1024);
        server_->start();
        nic_ = std::make_unique<vi::ViNic>(sim_, fabric_,
                                           host_.memory(), "nic");
        client_ = std::make_unique<DsaClient>(
            DsaImpl::Cdsa, host_, *nic_, server_->nic().port(),
            volume_);
        sim::spawn([](DsaClient &c) -> Task<> {
            co_await c.connect();
        }(*client_));
        sim_.run();
    }

    bool
    doHint(HintKind kind, uint64_t offset, uint64_t len)
    {
        bool ok = false;
        sim::spawn([](DsaClient &c, HintKind k, uint64_t off,
                      uint64_t n, bool &out) -> Task<> {
            out = co_await c.hint(k, off, n);
        }(*client_, kind, offset, len, ok));
        sim_.run();
        return ok;
    }

    sim::Simulation sim_;
    net::Fabric fabric_;
    osmodel::Node host_;
    std::unique_ptr<storage::V3Server> server_;
    uint32_t volume_ = 0;
    std::unique_ptr<vi::ViNic> nic_;
    std::unique_ptr<DsaClient> client_;
};

TEST_F(HintTest, WillNeedPrefetchesBlocks)
{
    ASSERT_TRUE(doHint(HintKind::WillNeed, 0, 64 * 1024));
    // The acknowledgement returns before the disk reads finish;
    // draining the simulation completes the background prefetch.
    sim_.run();
    EXPECT_EQ(server_->prefetchedBlocks(), 8u);
    EXPECT_EQ(server_->cache()->residentBlocks(), 8u);

    // A read of a prefetched block is now a cache hit.
    const Addr buf = host_.memory().allocate(8192);
    bool ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.read(8192, 8192, b);
    }(*client_, buf, ok));
    sim_.run();
    EXPECT_TRUE(ok);
    EXPECT_GE(server_->cache()->hits(), 1u);
    EXPECT_EQ(server_->cache()->misses(), 0u);
}

TEST_F(HintTest, DontNeedEvictsBlocks)
{
    const Addr buf = host_.memory().allocate(8192);
    bool ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.read(0, 8192, b);
    }(*client_, buf, ok));
    sim_.run();
    ASSERT_TRUE(ok);
    ASSERT_EQ(server_->cache()->residentBlocks(), 1u);

    ASSERT_TRUE(doHint(HintKind::DontNeed, 0, 8192));
    EXPECT_EQ(server_->cache()->residentBlocks(), 0u);
}

TEST_F(HintTest, SequentialIsAcknowledged)
{
    EXPECT_TRUE(doHint(HintKind::Sequential, 0, 1 << 20));
    EXPECT_EQ(server_->hintCount(), 1u);
}

TEST_F(HintTest, OutOfRangeHintFails)
{
    EXPECT_FALSE(doHint(HintKind::WillNeed,
                        client_->capacity() - 4096, 8192));
}

TEST_F(HintTest, HintsDoNotLeakCredits)
{
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(doHint(HintKind::Sequential, 0, 8192));
    }
    // Flow control fully recovered: a normal I/O still works.
    const Addr buf = host_.memory().allocate(8192);
    bool ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &out) -> Task<> {
        out = co_await c.read(0, 8192, b);
    }(*client_, buf, ok));
    sim_.run();
    EXPECT_TRUE(ok);
}

TEST_F(HintTest, PrefetchCoalescesWithDemandReads)
{
    // Hint a range, and while the prefetch is in flight read one of
    // its blocks: the demand read must wait for the same fetch (no
    // duplicate disk I/O) and return intact.
    const Addr buf = host_.memory().allocate(8192);
    bool hint_ok = false, read_ok = false;
    sim::spawn([](DsaClient &c, Addr b, bool &ho, bool &ro) -> Task<> {
        ho = co_await c.hint(HintKind::WillNeed, 0, 128 * 1024);
        ro = co_await c.read(65536, 8192, b);
    }(*client_, buf, hint_ok, read_ok));
    sim_.run();
    EXPECT_TRUE(hint_ok);
    EXPECT_TRUE(read_ok);
    EXPECT_EQ(server_->cache()->residentBlocks(), 16u);
}

} // namespace
} // namespace v3sim::dsa
