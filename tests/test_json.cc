/**
 * @file
 * util::JsonWriter / util::JsonValue tests: escaping, nesting,
 * numeric formatting, and parse round-trips.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/json.hh"

using namespace v3sim::util;

TEST(JsonWriter, ObjectsArraysAndCommas)
{
    JsonWriter w;
    w.beginObject();
    w.key("name").value("fig03");
    w.key("rows").beginArray();
    w.beginObject().key("x").value(int64_t{1}).endObject();
    w.beginObject().key("x").value(int64_t{2}).endObject();
    w.endArray();
    w.key("ok").value(true);
    w.key("none").null();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"name\":\"fig03\",\"rows\":[{\"x\":1},"
                       "{\"x\":2}],\"ok\":true,\"none\":null}");
}

TEST(JsonWriter, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)),
              "\\u0001");
}

TEST(JsonWriter, NumberFormatting)
{
    EXPECT_EQ(JsonWriter::number(42.0), "42");
    EXPECT_EQ(JsonWriter::number(-3.0), "-3");
    EXPECT_EQ(JsonWriter::number(0.5), "0.5");
    // JSON has no NaN/Inf; they must degrade to null.
    EXPECT_EQ(JsonWriter::number(std::nan("")), "null");
    EXPECT_EQ(JsonWriter::number(INFINITY), "null");
}

TEST(JsonWriter, RawSplicing)
{
    JsonWriter w;
    w.beginObject();
    w.key("metrics").raw("{\"a\":1}");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"metrics\":{\"a\":1}}");
}

TEST(JsonValue, ParsesDocuments)
{
    const auto doc = JsonValue::parse(
        " {\"s\":\"hi\\n\",\"n\":-2.5e1,\"b\":false,\"z\":null,"
        "\"a\":[1,2,3],\"o\":{\"k\":\"v\"}} ");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->find("s")->string, "hi\n");
    EXPECT_DOUBLE_EQ(doc->find("n")->number, -25.0);
    EXPECT_FALSE(doc->find("b")->boolean);
    EXPECT_EQ(doc->find("z")->type, JsonValue::Type::Null);
    ASSERT_TRUE(doc->find("a")->isArray());
    EXPECT_EQ(doc->find("a")->array.size(), 3u);
    EXPECT_EQ(doc->find("o")->find("k")->string, "v");
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonValue, RejectsMalformedInput)
{
    EXPECT_FALSE(JsonValue::parse("").has_value());
    EXPECT_FALSE(JsonValue::parse("{").has_value());
    EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(JsonValue::parse("[1 2]").has_value());
    EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
    EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
}

TEST(JsonValue, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject();
    w.key("quote\"key").value("tab\tvalue");
    w.key("pi").value(3.25);
    w.endObject();
    const auto doc = JsonValue::parse(w.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("quote\"key")->string, "tab\tvalue");
    EXPECT_DOUBLE_EQ(doc->find("pi")->number, 3.25);
}
