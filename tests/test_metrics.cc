/**
 * @file
 * MetricRegistry unit tests: registration, dotted-path lookup,
 * duplicate rejection, epoch reset semantics, snapshot/delta.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "util/json.hh"

using namespace v3sim;

TEST(MetricRegistry, RegisterAndLookup)
{
    sim::MetricRegistry registry;
    sim::CounterHandle ios = registry.counter("client.kdsa0.ios");
    sim::SamplerHandle lat = registry.sampler("client.kdsa0.latency_ns");
    sim::HistogramHandle hist =
        registry.histogram("client.kdsa0.latency_hist_ns");
    sim::TimeWeightedHandle depth = registry.timeWeighted("disk.d0.depth");

    ios.increment(3);
    lat.add(100.0);
    hist.add(4096.0);
    depth.set(10, 2.0);

    EXPECT_TRUE(registry.contains("client.kdsa0.ios"));
    // simlint:allow(metric-index: deliberate negative probe of contains())
    EXPECT_FALSE(registry.contains("client.kdsa0.nope"));
    EXPECT_EQ(registry.size(), 4u);

    ASSERT_NE(registry.findCounter("client.kdsa0.ios"), nullptr);
    EXPECT_EQ(registry.findCounter("client.kdsa0.ios")->value(), 3u);
    ASSERT_NE(registry.findSampler("client.kdsa0.latency_ns"),
              nullptr);
    EXPECT_DOUBLE_EQ(
        registry.findSampler("client.kdsa0.latency_ns")->mean(),
        100.0);
    ASSERT_NE(registry.findHistogram("client.kdsa0.latency_hist_ns"),
              nullptr);
    EXPECT_EQ(registry.findHistogram("client.kdsa0.latency_hist_ns")
                  ->count(),
              1u);
    EXPECT_NE(registry.findTimeWeighted("disk.d0.depth"), nullptr);

    // Wrong-kind lookups return null rather than lying.
    EXPECT_EQ(registry.findCounter("client.kdsa0.latency_ns"),
              nullptr);
    EXPECT_EQ(registry.findSampler("client.kdsa0.ios"), nullptr);
    // simlint:allow(metric-index: deliberate lookup of an unregistered path)
    EXPECT_EQ(registry.findHistogram("missing"), nullptr);
}

TEST(MetricRegistry, DuplicateAndEmptyPathsThrow)
{
    sim::MetricRegistry registry;
    registry.counter("a.b");
    EXPECT_THROW(registry.counter("a.b"), std::invalid_argument);
    EXPECT_THROW(registry.sampler("a.b"), std::invalid_argument);
    EXPECT_THROW(registry.gauge("a.b", [] { return 0.0; }),
                 std::invalid_argument);
    EXPECT_THROW(registry.counter(""), std::invalid_argument);
}

TEST(MetricRegistry, UniquePrefix)
{
    sim::MetricRegistry registry;
    EXPECT_EQ(registry.uniquePrefix("disk.sys"), "disk.sys");
    EXPECT_EQ(registry.uniquePrefix("disk.sys"), "disk.sys#2");
    EXPECT_EQ(registry.uniquePrefix("disk.sys"), "disk.sys#3");
    EXPECT_EQ(registry.uniquePrefix("disk.log"), "disk.log");
}

TEST(MetricRegistry, EpochResetClearsOwnedMetricsAndRunsHooks)
{
    sim::Tick now = 1000;
    sim::MetricRegistry registry([&now] { return now; });

    sim::CounterHandle count = registry.counter("c");
    sim::SamplerHandle samples = registry.sampler("s");
    sim::HistogramHandle hist = registry.histogram("h");
    sim::TimeWeightedHandle busy = registry.timeWeighted("t");
    count.increment(7);
    samples.add(5.0);
    hist.add(9.0);
    busy.set(0, 1.0);

    sim::Tick hook_at = -1;
    registry.onEpochReset([&hook_at](sim::Tick at) { hook_at = at; });

    now = 2000;
    registry.resetEpoch();

    EXPECT_EQ(count.value(), 0u);
    EXPECT_EQ(samples.count(), 0u);
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hook_at, 2000);
    EXPECT_EQ(registry.epochStart(), 2000);
    // Time-weighted integration restarts at the pre-reset value.
    EXPECT_DOUBLE_EQ(busy.current(), 1.0);
    now = 3000;
    EXPECT_DOUBLE_EQ(busy.average(now), 1.0);
}

TEST(MetricRegistry, SnapshotAndDelta)
{
    sim::MetricRegistry registry;
    sim::CounterHandle count = registry.counter("ops");
    sim::SamplerHandle samples = registry.sampler("lat");
    double gauge_value = 0.25;
    registry.gauge("ratio", [&gauge_value] { return gauge_value; });

    count.increment(10);
    samples.add(4.0);
    samples.add(6.0);
    const auto before = registry.snapshot();
    ASSERT_EQ(before.count("ops"), 1u);
    EXPECT_EQ(before.at("ops").count, 10u);
    EXPECT_DOUBLE_EQ(before.at("lat").mean, 5.0);
    EXPECT_DOUBLE_EQ(before.at("ratio").value, 0.25);

    count.increment(5);
    samples.add(20.0);
    gauge_value = 0.75;
    const auto after = registry.snapshot();

    const auto diff = sim::MetricRegistry::delta(before, after);
    EXPECT_EQ(diff.at("ops").count, 5u);
    EXPECT_EQ(diff.at("lat").count, 1u);
    EXPECT_DOUBLE_EQ(diff.at("lat").mean, 20.0);
    // Gauges are instantaneous: delta keeps the newest reading.
    EXPECT_DOUBLE_EQ(diff.at("ratio").value, 0.75);
}

TEST(MetricRegistry, ToJsonParses)
{
    sim::MetricRegistry registry;
    // simlint:allow(metric-handle: one-shot test setup, not a hot path)
    registry.counter("nic.0.packets_sent").increment(42);
    // simlint:allow(metric-handle: one-shot test setup, not a hot path)
    registry.sampler("client.local.latency_ns").add(123.0);
    registry.gauge("server.v3_0.cache.hit_ratio",
                   [] { return 0.5; });
    // simlint:allow(metric-handle: one-shot test setup, not a hot path)
    registry.histogram("client.local.latency_hist_ns").add(100.0);

    const auto doc = util::JsonValue::parse(registry.toJson());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    // Histograms export the full tail ladder, p99.9 included.
    const util::JsonValue *hist =
        doc->find("client.local.latency_hist_ns");
    ASSERT_NE(hist, nullptr);
    const util::JsonValue *p999 = hist->find("p999");
    ASSERT_NE(p999, nullptr);
    EXPECT_DOUBLE_EQ(p999->number, 96.0); // [64,128) midpoint
    const util::JsonValue *sent = doc->find("nic.0.packets_sent");
    ASSERT_NE(sent, nullptr);
    const util::JsonValue *count = sent->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->number, 42.0);
    const util::JsonValue *kind = sent->find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->string, "counter");
}
