/**
 * @file
 * Unit tests for the CPU pool: admission, priority, per-category
 * accounting, and utilization math.
 */

#include <gtest/gtest.h>

#include <vector>

#include "osmodel/cpu_pool.hh"
#include "sim/simulation.hh"

namespace v3sim::osmodel
{
namespace
{

using sim::Task;
using sim::Tick;
using sim::usecs;

TEST(CpuPool, RunChargesCategory)
{
    sim::Simulation sim;
    CpuPool pool(sim, 2, "cpu");
    sim::spawn([](CpuPool &p) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await lease.run(usecs(10), CpuCat::Sql);
        co_await lease.run(usecs(5), CpuCat::Dsa);
        p.release();
    }(pool));
    sim.run();
    EXPECT_EQ(pool.busyTime(CpuCat::Sql), usecs(10));
    EXPECT_EQ(pool.busyTime(CpuCat::Dsa), usecs(5));
    EXPECT_EQ(pool.totalBusyTime(), usecs(15));
}

TEST(CpuPool, AdmissionBoundedByCpuCount)
{
    sim::Simulation sim;
    CpuPool pool(sim, 2, "cpu");
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i) {
        sim::spawn([](CpuPool &p, sim::Simulation &s,
                      std::vector<Tick> &out) -> Task<> {
            CpuLease lease = co_await p.acquire();
            co_await lease.run(usecs(10), CpuCat::Sql);
            p.release();
            out.push_back(s.now());
        }(pool, sim, done));
    }
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[0], usecs(10));
    EXPECT_EQ(done[1], usecs(10));
    EXPECT_EQ(done[2], usecs(20));
    EXPECT_EQ(done[3], usecs(20));
}

TEST(CpuPool, InterruptPriorityJumpsQueue)
{
    sim::Simulation sim;
    CpuPool pool(sim, 1, "cpu");
    std::vector<std::string> order;

    auto normal = [](CpuPool &p, std::vector<std::string> &out,
                     std::string name) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await lease.run(usecs(10), CpuCat::Sql);
        p.release();
        out.push_back(name);
    };
    auto intr = [](CpuPool &p, std::vector<std::string> &out) -> Task<> {
        CpuLease lease =
            co_await p.acquire(CpuPool::kInterruptPriority);
        co_await lease.run(usecs(1), CpuCat::Kernel);
        p.release();
        out.push_back("intr");
    };

    // All three contend on the same tick, so the final-band
    // arbitration sees the full set (DESIGN.md §8.3): the interrupt
    // outranks both normal acquirers and takes the CPU first; the
    // normal pair then run in arrival order (equal priority and key).
    sim::spawn(normal(pool, order, "a"));
    sim::spawn(normal(pool, order, "b"));
    sim::spawn(intr(pool, order));
    sim.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"intr", "a", "b"}));
}

TEST(CpuPool, UtilizationPerCategory)
{
    sim::Simulation sim;
    CpuPool pool(sim, 4, "cpu");
    sim::spawn([](CpuPool &p) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await lease.run(usecs(40), CpuCat::Sql);
        p.release();
    }(pool));
    sim.run();
    sim.runUntil(usecs(100));
    // 40us of one CPU out of 4 CPUs x 100us window = 10%.
    EXPECT_NEAR(pool.utilization(), 0.10, 1e-9);
    EXPECT_NEAR(pool.utilization(CpuCat::Sql), 0.10, 1e-9);
    EXPECT_NEAR(pool.utilization(CpuCat::Kernel), 0.0, 1e-9);
}

TEST(CpuPool, ResetStatsStartsNewWindow)
{
    sim::Simulation sim;
    CpuPool pool(sim, 1, "cpu");
    sim::spawn([](CpuPool &p) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await lease.run(usecs(10), CpuCat::Sql);
        p.release();
    }(pool));
    sim.run();
    pool.resetStats();
    sim.runUntil(usecs(20));
    EXPECT_EQ(pool.totalBusyTime(), 0);
    EXPECT_NEAR(pool.utilization(), 0.0, 1e-9);
}

TEST(CpuPool, ZeroDurationRunIsFree)
{
    sim::Simulation sim;
    CpuPool pool(sim, 1, "cpu");
    bool done = false;
    sim::spawn([](CpuPool &p, bool &flag) -> Task<> {
        CpuLease lease = co_await p.acquire();
        co_await lease.run(0, CpuCat::Sql);
        p.release();
        flag = true;
    }(pool, done));
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sim.now(), 0);
}

TEST(CpuPool, CategoryNames)
{
    EXPECT_STREQ(cpuCatName(CpuCat::Sql), "SQL");
    EXPECT_STREQ(cpuCatName(CpuCat::Kernel), "OS Kernel");
    EXPECT_STREQ(cpuCatName(CpuCat::Lock), "Lock");
    EXPECT_STREQ(cpuCatName(CpuCat::Dsa), "DSA");
    EXPECT_STREQ(cpuCatName(CpuCat::Vi), "VI");
    EXPECT_STREQ(cpuCatName(CpuCat::Other), "Other");
}

} // namespace
} // namespace v3sim::osmodel
