/**
 * @file
 * End-to-end smoke for tools/bench_diff: runs selftime --quick twice
 * to produce two real BENCH_selftime.json artifacts, then drives
 * bench_diff over them — once plainly (must succeed and match every
 * profile row) and once with an absurd --min-ratio (must fail), so
 * both the comparison and the regression-gate exit path are
 * exercised against the real artifact schema.
 *
 * Registered with ctest as `bench_diff_smoke`; CMake passes the
 * selftime and bench_diff binaries plus two scratch artifact paths.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

namespace
{

int
fail(const std::string &why)
{
    std::fprintf(stderr, "bench_diff_smoke: %s\n", why.c_str());
    return 1;
}

int
runShown(const std::string &command)
{
    std::printf("bench_diff_smoke: %s\n", command.c_str());
    std::fflush(stdout);
    return std::system(command.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 5) {
        return fail("usage: bench_diff_smoke <selftime-binary> "
                    "<bench_diff-binary> <out_a.json> <out_b.json>");
    }
    const std::string selftime = argv[1];
    const std::string bench_diff = argv[2];
    const std::string path_a = argv[3];
    const std::string path_b = argv[4];

    for (const std::string &path : {path_a, path_b}) {
        std::remove(path.c_str());
        if (runShown("\"" + selftime + "\" --quick --json \"" +
                     path + "\"") != 0)
            return fail("selftime --quick run failed");
    }

    if (runShown("\"" + bench_diff + "\" \"" + path_a + "\" \"" +
                 path_b + "\"") != 0)
        return fail("bench_diff rejected two valid artifacts");

    // Same-machine back-to-back runs cannot be 1000x apart; the
    // regression gate must trip and exit nonzero.
    if (runShown("\"" + bench_diff + "\" \"" + path_a + "\" \"" +
                 path_b + "\" --min-ratio 1000") == 0)
        return fail("--min-ratio 1000 did not trip");

    std::printf("bench_diff_smoke: compare and gate paths OK\n");
    return 0;
}
